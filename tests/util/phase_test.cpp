#include "util/phase.h"

#include <gtest/gtest.h>

#include <numbers>

#include "util/db.h"

namespace anc {
namespace {

constexpr double pi = std::numbers::pi;

TEST(Phase, WrapIdentityInRange)
{
    EXPECT_DOUBLE_EQ(wrap_phase(0.0), 0.0);
    EXPECT_DOUBLE_EQ(wrap_phase(1.5), 1.5);
    EXPECT_DOUBLE_EQ(wrap_phase(-1.5), -1.5);
    EXPECT_DOUBLE_EQ(wrap_phase(pi), pi);
}

TEST(Phase, WrapLargeAngles)
{
    EXPECT_NEAR(wrap_phase(2.0 * pi), 0.0, 1e-12);
    EXPECT_NEAR(wrap_phase(3.0 * pi), pi, 1e-12);
    EXPECT_NEAR(wrap_phase(-3.0 * pi), pi, 1e-12);
    EXPECT_NEAR(wrap_phase(7.5 * pi), -0.5 * pi, 1e-12);
}

TEST(Phase, WrapResultAlwaysInInterval)
{
    for (double angle = -50.0; angle <= 50.0; angle += 0.173) {
        const double w = wrap_phase(angle);
        EXPECT_GT(w, -pi - 1e-12);
        EXPECT_LE(w, pi + 1e-12);
    }
}

TEST(Phase, DistanceHandlesWrapAround)
{
    EXPECT_NEAR(phase_distance(pi - 0.1, -pi + 0.1), 0.2, 1e-12);
    EXPECT_NEAR(phase_distance(0.0, pi), pi, 1e-12);
    EXPECT_NEAR(phase_distance(0.3, 0.1), 0.2, 1e-12);
}

TEST(Db, RoundTrip)
{
    for (const double db : {-10.0, 0.0, 3.0, 20.0, 25.0, 40.0})
        EXPECT_NEAR(to_db(from_db(db)), db, 1e-12);
}

TEST(Db, KnownValues)
{
    EXPECT_NEAR(from_db(0.0), 1.0, 1e-12);
    EXPECT_NEAR(from_db(10.0), 10.0, 1e-12);
    EXPECT_NEAR(from_db(20.0), 100.0, 1e-12);
    EXPECT_NEAR(from_db(-3.0), 0.5011872, 1e-6);
    EXPECT_NEAR(amplitude_from_db(20.0), 10.0, 1e-12);
    EXPECT_NEAR(amplitude_from_db(6.0), 1.995262, 1e-6);
}

} // namespace
} // namespace anc
