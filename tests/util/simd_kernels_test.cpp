// The SIMD backend's two contracts (util/simd.h):
//
//   1. dispatch — resolve_backend() is a pure, testable rule; the AVX2
//      lanes are only reachable when CPUID proves AVX2+FMA, the AVX-512
//      lanes additionally require the AVX-512F flag, and the
//      ANC_FORCE_SCALAR_SIMD / ANC_FORCE_AVX2_SIMD overrides step the
//      decision down.
//   2. bit-compatibility — every lane kernel equals the scalar fast
//      kernel it transcribes, element for element, bit for bit.  The
//      "ULP bound" of every kernel is therefore 0, which these tests
//      assert with exact == comparisons (through bit patterns, so
//      -0.0 vs +0.0 discrepancies cannot hide).
//
// The *_avx2 vs *_scalar comparisons run only on hardware where CPUID
// reports AVX2+FMA, and the *_avx512 comparisons only where it also
// reports AVX-512F (anywhere else the narrower backend is active and
// there is nothing to compare); the public batch API is additionally
// compared against direct fast-kernel loops on every machine, covering
// the dispatcher's block/tail seam at awkward lengths.

#include "util/simd.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/cpu_features.h"
#include "util/fastmath.h"
#include "util/rng.h"

namespace anc::simd {
namespace {

bool avx2_available()
{
    return cpu_features().avx2 && cpu_features().fma;
}

bool avx512_available()
{
    return avx2_available() && cpu_features().avx512f;
}

void expect_same_bits(double a, double b, const char* what, std::size_t i)
{
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
        << what << " lane " << i << ": " << a << " vs " << b;
}

std::vector<double> random_range(std::size_t count, double lo, double hi,
                                 std::uint64_t seed)
{
    Pcg32 rng{seed, 11};
    std::vector<double> out(count);
    for (double& v : out)
        v = lo + (hi - lo) * rng.next_double();
    return out;
}

TEST(SimdBackend, ResolveBackendRule)
{
    // (avx2, fma, avx512f, force_scalar, force_avx2)
    EXPECT_EQ(resolve_backend(true, true, false, false, false), Backend::avx2);
    EXPECT_EQ(resolve_backend(true, true, true, false, false), Backend::avx512);
    EXPECT_EQ(resolve_backend(true, true, true, false, true), Backend::avx2);
    EXPECT_EQ(resolve_backend(true, true, true, true, false), Backend::scalar);
    // force_scalar beats force_avx2 when both overrides are set.
    EXPECT_EQ(resolve_backend(true, true, true, true, true), Backend::scalar);
    EXPECT_EQ(resolve_backend(true, true, false, true, false), Backend::scalar);
    EXPECT_EQ(resolve_backend(false, true, false, false, false), Backend::scalar);
    EXPECT_EQ(resolve_backend(true, false, false, false, false), Backend::scalar);
    // force_avx2 never upgrades a machine that resolves to scalar.
    EXPECT_EQ(resolve_backend(false, false, false, false, true), Backend::scalar);
    EXPECT_EQ(resolve_backend(false, false, false, false, false), Backend::scalar);
    EXPECT_STREQ(to_string(Backend::avx512), "avx512");
    EXPECT_STREQ(to_string(Backend::avx2), "avx2");
    EXPECT_STREQ(to_string(Backend::scalar), "scalar");
}

TEST(SimdBackend, ActiveBackendMatchesCpuAndOverride)
{
    // The process-wide decision must agree with the pure rule applied to
    // this process's actual CPUID and environment.
    EXPECT_EQ(active_backend(),
              resolve_backend(cpu_features().avx2, cpu_features().fma,
                              cpu_features().avx512f, force_scalar_from_env(),
                              force_avx2_from_env()));
    EXPECT_EQ(kernels_active(), active_backend() != Backend::scalar);
}

TEST(SimdBackend, CpuFeatureImplications)
{
    // CPUID sanity: AVX2 without AVX (or AVX-512F without AVX2) would
    // mean the probe mis-read a leaf.
    if (cpu_features().avx2) {
        EXPECT_TRUE(cpu_features().avx);
    }
    if (cpu_features().avx512f) {
        EXPECT_TRUE(cpu_features().avx2);
    }
}

// ----------------------------------------------- batch API == fast loop
// Awkward lengths exercise the AVX2 block / scalar tail seam.

constexpr std::size_t lengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 31, 100, 1023};

TEST(SimdKernels, Atan2BatchMatchesFastAtan2)
{
    for (const std::size_t n : lengths) {
        const std::vector<double> y = random_range(n, -10.0, 10.0, 0xA1);
        const std::vector<double> x = random_range(n, -10.0, 10.0, 0xA2);
        std::vector<double> out(n);
        atan2_batch(y.data(), x.data(), out.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            expect_same_bits(out[i], fast_atan2(y[i], x[i]), "atan2", i);
    }
}

TEST(SimdKernels, Atan2BatchEdgeCases)
{
    // Quadrants, axes, and signed zeros — where octant assembly and
    // copysign must match std::atan2's conventions exactly.
    const std::vector<double> y = {0.0,  -0.0, 0.0,  -0.0, 1.0, -1.0,
                                   1.0,  -1.0, 5.0,  -5.0, 0.0, -0.0,
                                   1e-9, 1e9,  -1e9, 2.5};
    const std::vector<double> x = {0.0,  0.0,  -0.0, -0.0, 0.0,  0.0,
                                   1.0,  1.0,  -3.0, -3.0, 7.0,  7.0,
                                   1e9,  1e-9, 1e-9, -2.5};
    std::vector<double> out(y.size());
    atan2_batch(y.data(), x.data(), out.data(), y.size());
    for (std::size_t i = 0; i < y.size(); ++i)
        expect_same_bits(out[i], fast_atan2(y[i], x[i]), "atan2-edge", i);
}

TEST(SimdKernels, SincosBatchMatchesFastSincos)
{
    for (const std::size_t n : lengths) {
        const std::vector<double> angles = random_range(n, -1000.0, 1000.0, 0xB1);
        std::vector<double> s(n);
        std::vector<double> c(n);
        sincos_batch(angles.data(), s.data(), c.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            double se = 0.0;
            double ce = 0.0;
            fast_sincos(angles[i], se, ce);
            expect_same_bits(s[i], se, "sin", i);
            expect_same_bits(c[i], ce, "cos", i);
        }
    }
}

TEST(SimdKernels, LogBatchMatchesFastLog)
{
    for (const std::size_t n : lengths) {
        std::vector<double> x = random_range(n, 1e-12, 4.0, 0xC1);
        std::vector<double> out(n);
        log_batch(x.data(), out.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            expect_same_bits(out[i], fast_log(x[i]), "log", i);
    }
}

TEST(SimdKernels, PolarBatchMatchesFastLoop)
{
    for (const std::size_t n : lengths) {
        const std::vector<double> angles = random_range(n, -8.0, 8.0, 0xD1);
        std::vector<double> out(2 * n);
        polar_batch(angles.data(), 0.83, out.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            double s = 0.0;
            double c = 0.0;
            fast_sincos(angles[i], s, c);
            expect_same_bits(out[2 * i], 0.83 * c, "polar-re", i);
            expect_same_bits(out[2 * i + 1], 0.83 * s, "polar-im", i);
        }
    }
}

// --------------------------------------------- avx2 vs scalar directly
// On AVX2 hardware, compare the two backend implementations head to
// head — this is the lane-vs-scalar proof that also stands in for the
// "native vs ANC_FORCE_SCALAR_SIMD dispatch" bit-identity claim (a
// forced-scalar process runs exactly detail::*_scalar).

TEST(SimdKernels, Avx2LanesEqualScalarKernels)
{
    if (!avx2_available())
        GTEST_SKIP() << "CPU lacks AVX2+FMA; backend is scalar-only here";
    const std::size_t n = 4096; // multiple of 4: pure lane coverage
    const std::vector<double> y = random_range(n, -20.0, 20.0, 0xE1);
    const std::vector<double> x = random_range(n, -20.0, 20.0, 0xE2);
    const std::vector<double> angles = random_range(n, -2000.0, 2000.0, 0xE3);
    const std::vector<double> uniforms = random_range(n, 1e-12, 2.0, 0xE4);

    std::vector<double> a1(n), a2(n);
    detail::atan2_batch_avx2(y.data(), x.data(), a1.data(), n);
    detail::atan2_batch_scalar(y.data(), x.data(), a2.data(), n);
    std::vector<double> s1(n), c1(n), s2(n), c2(n);
    detail::sincos_batch_avx2(angles.data(), s1.data(), c1.data(), n);
    detail::sincos_batch_scalar(angles.data(), s2.data(), c2.data(), n);
    std::vector<double> l1(n), l2(n);
    detail::log_batch_avx2(uniforms.data(), l1.data(), n);
    detail::log_batch_scalar(uniforms.data(), l2.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        expect_same_bits(a1[i], a2[i], "atan2 avx2-vs-scalar", i);
        expect_same_bits(s1[i], s2[i], "sin avx2-vs-scalar", i);
        expect_same_bits(c1[i], c2[i], "cos avx2-vs-scalar", i);
        expect_same_bits(l1[i], l2[i], "log avx2-vs-scalar", i);
    }
}

TEST(SimdKernels, Avx2DecoderKernelsEqualScalar)
{
    if (!avx2_available())
        GTEST_SKIP() << "CPU lacks AVX2+FMA; backend is scalar-only here";
    const std::size_t count = 512;
    const std::vector<double> samples = random_range(2 * count, -3.0, 3.0, 0xF1);
    const double a = 0.95;
    const double b = 0.88;

    std::vector<double> tp1(count), tm1(count), pm1(count), pp1(count);
    std::vector<double> tp2(count), tm2(count), pm2(count), pp2(count);
    detail::anc_candidates_batch_avx2(samples.data(), count, a, b, tp1.data(),
                                      tm1.data(), pm1.data(), pp1.data());
    detail::anc_candidates_batch_scalar(samples.data(), count, a, b, tp2.data(),
                                        tm2.data(), pm2.data(), pp2.data());
    for (std::size_t i = 0; i < count; ++i) {
        expect_same_bits(tp1[i], tp2[i], "theta+", i);
        expect_same_bits(tm1[i], tm2[i], "theta-", i);
        expect_same_bits(pm1[i], pm2[i], "phi-", i);
        expect_same_bits(pp1[i], pp2[i], "phi+", i);
    }

    const std::size_t transitions = count - 4; // multiple of 4
    std::vector<double> known(transitions);
    Pcg32 rng{0xF2, 3};
    for (double& k : known)
        k = rng.next_bernoulli(0.5) ? 1.5707963267948966 : -1.5707963267948966;
    std::vector<double> f1(transitions), e1(transitions);
    std::vector<double> f2(transitions), e2(transitions);
    detail::anc_select_batch_avx2(tp1.data(), tm1.data(), pm1.data(), pp1.data(),
                                  known.data(), transitions, f1.data(), e1.data());
    detail::anc_select_batch_scalar(tp2.data(), tm2.data(), pm2.data(), pp2.data(),
                                    known.data(), transitions, f2.data(),
                                    e2.data());
    std::vector<double> d1(transitions), d2(transitions);
    detail::diff_arg_batch_avx2(samples.data(), transitions, d1.data());
    detail::diff_arg_batch_scalar(samples.data(), transitions, d2.data());
    for (std::size_t i = 0; i < transitions; ++i) {
        expect_same_bits(f1[i], f2[i], "selected phi", i);
        expect_same_bits(e1[i], e2[i], "selected error", i);
        expect_same_bits(d1[i], d2[i], "diff arg", i);
    }
}

// ------------------------------------------- avx512 vs scalar directly
// On AVX-512F hardware, the 8-wide lanes must equal the scalar kernels
// bit for bit too (and, transitively, the AVX2 lanes).  These mirror
// the avx2 comparisons at widths that are multiples of 8 so the 512-bit
// paths get pure lane coverage.

TEST(SimdKernels, Avx512LanesEqualScalarKernels)
{
    if (!avx512_available())
        GTEST_SKIP() << "CPU lacks AVX-512F; widest backend here is avx2";
    const std::size_t n = 4096; // multiple of 8: pure lane coverage
    const std::vector<double> y = random_range(n, -20.0, 20.0, 0x511);
    const std::vector<double> x = random_range(n, -20.0, 20.0, 0x512);
    const std::vector<double> angles = random_range(n, -2000.0, 2000.0, 0x513);
    const std::vector<double> uniforms = random_range(n, 1e-12, 2.0, 0x514);

    std::vector<double> a1(n), a2(n);
    detail::atan2_batch_avx512(y.data(), x.data(), a1.data(), n);
    detail::atan2_batch_scalar(y.data(), x.data(), a2.data(), n);
    std::vector<double> s1(n), c1(n), s2(n), c2(n);
    detail::sincos_batch_avx512(angles.data(), s1.data(), c1.data(), n);
    detail::sincos_batch_scalar(angles.data(), s2.data(), c2.data(), n);
    std::vector<double> l1(n), l2(n);
    detail::log_batch_avx512(uniforms.data(), l1.data(), n);
    detail::log_batch_scalar(uniforms.data(), l2.data(), n);
    std::vector<double> p1(2 * n), p2(2 * n);
    detail::polar_batch_avx512(angles.data(), 0.83, p1.data(), n);
    detail::polar_batch_scalar(angles.data(), 0.83, p2.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        expect_same_bits(a1[i], a2[i], "atan2 avx512-vs-scalar", i);
        expect_same_bits(s1[i], s2[i], "sin avx512-vs-scalar", i);
        expect_same_bits(c1[i], c2[i], "cos avx512-vs-scalar", i);
        expect_same_bits(l1[i], l2[i], "log avx512-vs-scalar", i);
        expect_same_bits(p1[2 * i], p2[2 * i], "polar-re avx512-vs-scalar", i);
        expect_same_bits(p1[2 * i + 1], p2[2 * i + 1],
                         "polar-im avx512-vs-scalar", i);
    }
}

TEST(SimdKernels, Avx512DecoderKernelsEqualScalar)
{
    if (!avx512_available())
        GTEST_SKIP() << "CPU lacks AVX-512F; widest backend here is avx2";
    const std::size_t count = 512;
    const std::vector<double> samples = random_range(2 * count, -3.0, 3.0, 0x521);
    const double a = 0.95;
    const double b = 0.88;

    std::vector<double> tp1(count), tm1(count), pm1(count), pp1(count);
    std::vector<double> tp2(count), tm2(count), pm2(count), pp2(count);
    detail::anc_candidates_batch_avx512(samples.data(), count, a, b, tp1.data(),
                                        tm1.data(), pm1.data(), pp1.data());
    detail::anc_candidates_batch_scalar(samples.data(), count, a, b, tp2.data(),
                                        tm2.data(), pm2.data(), pp2.data());
    for (std::size_t i = 0; i < count; ++i) {
        expect_same_bits(tp1[i], tp2[i], "theta+ avx512", i);
        expect_same_bits(tm1[i], tm2[i], "theta- avx512", i);
        expect_same_bits(pm1[i], pm2[i], "phi- avx512", i);
        expect_same_bits(pp1[i], pp2[i], "phi+ avx512", i);
    }

    const std::size_t transitions = count - 8; // multiple of 8
    std::vector<double> known(transitions);
    Pcg32 rng{0x522, 3};
    for (double& k : known)
        k = rng.next_bernoulli(0.5) ? 1.5707963267948966 : -1.5707963267948966;
    std::vector<double> f1(transitions), e1(transitions);
    std::vector<double> f2(transitions), e2(transitions);
    detail::anc_select_batch_avx512(tp1.data(), tm1.data(), pm1.data(), pp1.data(),
                                    known.data(), transitions, f1.data(),
                                    e1.data());
    detail::anc_select_batch_scalar(tp2.data(), tm2.data(), pm2.data(), pp2.data(),
                                    known.data(), transitions, f2.data(),
                                    e2.data());
    std::vector<double> d1(transitions), d2(transitions);
    detail::diff_arg_batch_avx512(samples.data(), transitions, d1.data());
    detail::diff_arg_batch_scalar(samples.data(), transitions, d2.data());
    for (std::size_t i = 0; i < transitions; ++i) {
        expect_same_bits(f1[i], f2[i], "selected phi avx512", i);
        expect_same_bits(e1[i], e2[i], "selected error avx512", i);
        expect_same_bits(d1[i], d2[i], "diff arg avx512", i);
    }
}

TEST(SimdKernels, Avx512CounterNormalEqualsAvx2)
{
    if (!avx512_available())
        GTEST_SKIP() << "CPU lacks AVX-512F; widest backend here is avx2";
    // The two lane widths must emit the identical z stream for identical
    // (key, counter) words.  Keys are passed directly so this holds for
    // arbitrary key material, not just Counter_normal-derived keys (the
    // public fill_simd path is covered by tests/util/counter_normal_*).
    const std::uint64_t key_a = 0x0123456789abcdefULL;
    const std::uint64_t key_b = 0xfedcba9876543210ULL;
    const std::size_t count = 256; // multiple of 16
    std::vector<double> wide(count), narrow(count);
    detail::counter_normal_fill_avx512(key_a, key_b, 41, wide.data(), count);
    detail::counter_normal_fill_avx2(key_a, key_b, 41, narrow.data(), count);
    for (std::size_t i = 0; i < count; ++i)
        expect_same_bits(wide[i], narrow[i], "counter-normal fill avx512", i);

    std::vector<double> acc_wide(count, 0.25), acc_narrow(count, 0.25);
    detail::counter_normal_add_scaled_avx512(key_a, key_b, 41, 0.7,
                                             acc_wide.data(), count);
    detail::counter_normal_add_scaled_avx2(key_a, key_b, 41, 0.7,
                                           acc_narrow.data(), count);
    for (std::size_t i = 0; i < count; ++i)
        expect_same_bits(acc_wide[i], acc_narrow[i],
                         "counter-normal add_scaled avx512", i);
}

TEST(SimdKernels, LaneKernelsStayWithinFastErrorBounds)
{
    // Belt and braces on top of bit-equality: the lane kernels inherit
    // the scalar fast kernels' measured error bounds against libm
    // (tests/util/fastmath_test.cpp).  A 10x slack keeps this from
    // duplicating that test's tight calibration while still catching a
    // wrong-polynomial regression immediately.
    const std::size_t n = 20000;
    const std::vector<double> y = random_range(n, -5.0, 5.0, 0x91);
    const std::vector<double> x = random_range(n, -5.0, 5.0, 0x92);
    std::vector<double> out(n);
    atan2_batch(y.data(), x.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_NEAR(out[i], std::atan2(y[i], x[i]), 1e-10);

    const std::vector<double> angles = random_range(n, -100.0, 100.0, 0x93);
    std::vector<double> s(n);
    std::vector<double> c(n);
    sincos_batch(angles.data(), s.data(), c.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(s[i], std::sin(angles[i]), 1e-12);
        ASSERT_NEAR(c[i], std::cos(angles[i]), 1e-12);
    }
}

} // namespace
} // namespace anc::simd
