// util/net.h: the non-blocking TCP primitives under the jstream
// transport.  Everything runs over loopback with ephemeral ports, so
// the suite is hermetic; the SIGPIPE test is the load-bearing one —
// a worker writing to a dead coordinator must get an error code, not
// a process kill.

#include "util/net.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

namespace anc::util {
namespace {

using std::chrono::milliseconds;

TEST(Net, ParseHostPort)
{
    Host_port hp;
    EXPECT_TRUE(parse_host_port("127.0.0.1:9000", hp));
    EXPECT_EQ(hp.host, "127.0.0.1");
    EXPECT_EQ(hp.port, 9000);

    EXPECT_TRUE(parse_host_port("example.com:1", hp));
    EXPECT_EQ(hp.host, "example.com");
    EXPECT_EQ(hp.port, 1);

    EXPECT_FALSE(parse_host_port("", hp));
    EXPECT_FALSE(parse_host_port("nocolon", hp));
    EXPECT_FALSE(parse_host_port(":9000", hp));
    EXPECT_FALSE(parse_host_port("host:", hp));
    EXPECT_FALSE(parse_host_port("host:0", hp));
    EXPECT_FALSE(parse_host_port("host:65536", hp));
    EXPECT_FALSE(parse_host_port("host:12ab", hp));
}

TEST(Net, ListenerPicksEphemeralPortAndAcceptsNonBlocking)
{
    Tcp_listener listener = Tcp_listener::listen(0);
    EXPECT_GT(listener.port(), 0);

    // Nothing connecting yet: accept returns an invalid socket, never
    // blocks.
    Tcp_socket none = listener.accept();
    EXPECT_FALSE(none.valid());
}

TEST(Net, LoopbackRoundTrip)
{
    Tcp_listener listener = Tcp_listener::listen(0);
    Tcp_socket client = Tcp_socket::connect(
        Host_port{"127.0.0.1", listener.port()}, milliseconds{1000});
    ASSERT_TRUE(client.valid());

    Tcp_socket server;
    for (int i = 0; i < 100 && !server.valid(); ++i) {
        server = listener.accept();
        if (!server.valid())
            std::this_thread::sleep_for(milliseconds{5});
    }
    ASSERT_TRUE(server.valid());

    const std::string message = "hello over loopback";
    ASSERT_TRUE(client.send_all(message.data(), message.size(), milliseconds{1000}));

    std::string received;
    for (int i = 0; i < 200 && received.size() < message.size(); ++i) {
        std::string chunk;
        const auto status = server.recv_available(chunk);
        ASSERT_NE(status, Tcp_socket::Recv_status::error);
        received += chunk;
        if (received.size() < message.size())
            std::this_thread::sleep_for(milliseconds{2});
    }
    EXPECT_EQ(received, message);
}

TEST(Net, RecvReportsPeerClose)
{
    Tcp_listener listener = Tcp_listener::listen(0);
    Tcp_socket client = Tcp_socket::connect(
        Host_port{"127.0.0.1", listener.port()}, milliseconds{1000});
    ASSERT_TRUE(client.valid());

    Tcp_socket server;
    for (int i = 0; i < 100 && !server.valid(); ++i) {
        server = listener.accept();
        if (!server.valid())
            std::this_thread::sleep_for(milliseconds{5});
    }
    ASSERT_TRUE(server.valid());

    client = Tcp_socket{}; // close the client end

    Tcp_socket::Recv_status status = Tcp_socket::Recv_status::none;
    for (int i = 0; i < 200 && status == Tcp_socket::Recv_status::none; ++i) {
        std::string chunk;
        status = server.recv_available(chunk);
        if (status == Tcp_socket::Recv_status::none)
            std::this_thread::sleep_for(milliseconds{2});
    }
    EXPECT_EQ(status, Tcp_socket::Recv_status::closed);
}

TEST(Net, WriteAfterPeerCloseFailsInsteadOfKillingTheProcess)
{
    ignore_sigpipe();
    Tcp_listener listener = Tcp_listener::listen(0);
    Tcp_socket client = Tcp_socket::connect(
        Host_port{"127.0.0.1", listener.port()}, milliseconds{1000});
    ASSERT_TRUE(client.valid());

    Tcp_socket server;
    for (int i = 0; i < 100 && !server.valid(); ++i) {
        server = listener.accept();
        if (!server.valid())
            std::this_thread::sleep_for(milliseconds{5});
    }
    ASSERT_TRUE(server.valid());
    server = Tcp_socket{}; // peer vanishes (a SIGKILLed coordinator)

    // The first write may land in the kernel buffer; keep writing until
    // the RST comes back.  Reaching the assertion AT ALL is the test:
    // without MSG_NOSIGNAL/SIG_IGN this raises SIGPIPE and the process
    // dies.
    const std::string junk(4096, 'x');
    bool ok = true;
    for (int i = 0; i < 200 && ok; ++i) {
        ok = client.send_all(junk.data(), junk.size(), milliseconds{100});
        std::this_thread::sleep_for(milliseconds{1});
    }
    EXPECT_FALSE(ok);
}

TEST(Net, ConnectToDeadPortFailsFast)
{
    // Bind-then-close: the port was just proven unused, so connect gets
    // a refusal, not a hang.
    std::uint16_t dead_port = 0;
    {
        Tcp_listener probe = Tcp_listener::listen(0);
        dead_port = probe.port();
    }
    const auto start = std::chrono::steady_clock::now();
    Tcp_socket socket = Tcp_socket::connect(Host_port{"127.0.0.1", dead_port},
                                            milliseconds{2000});
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_FALSE(socket.valid());
    EXPECT_LT(elapsed, std::chrono::seconds{2});
}

} // namespace
} // namespace anc::util
