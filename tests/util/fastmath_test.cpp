// Error-bound locks for the fast math kernels (util/fastmath.h).  The
// fast profile's scientific validity rests on two layers: these measured
// kernel bounds, and the statistical corridors at the scenario level
// (tests/engine/math_profile_corridor_test.cpp).  If a kernel change
// widens an error bound, this file fails before any corridor drifts.

#include "util/fastmath.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace anc {
namespace {

TEST(FastMath, SincosMatchesLibmTightly)
{
    Pcg32 rng{2024, 7};
    // Dense sweep over the angle ranges the codebase produces: wrapped
    // phases, per-frame accumulations, Box-Muller angles.
    double max_err_core = 0.0;
    for (int i = -200000; i <= 200000; ++i) {
        const double x = i * 1e-4; // [-20, 20]
        double s = 0.0, c = 0.0;
        fast_sincos(x, s, c);
        max_err_core = std::max(max_err_core, std::abs(s - std::sin(x)));
        max_err_core = std::max(max_err_core, std::abs(c - std::cos(x)));
    }
    EXPECT_LT(max_err_core, 5e-15);
    // Far beyond the operating range the two-term Cody-Waite reduction
    // degrades gracefully (the documented ~1e-13 tail bound).
    double max_err_wide = 0.0;
    for (int i = 0; i < 200000; ++i) {
        const double x = (rng.next_double() - 0.5) * 2000.0; // [-1000, 1000]
        double s = 0.0, c = 0.0;
        fast_sincos(x, s, c);
        max_err_wide = std::max(max_err_wide, std::abs(s - std::sin(x)));
        max_err_wide = std::max(max_err_wide, std::abs(c - std::cos(x)));
    }
    EXPECT_LT(max_err_wide, 2e-13);
}

TEST(FastMath, Atan2BoundedError)
{
    Pcg32 rng{77, 3};
    double max_err = 0.0;
    for (int i = 0; i < 500000; ++i) {
        // Log-uniform magnitudes exercise wildly mismatched operands.
        const double my = std::exp((rng.next_double() - 0.5) * 60.0);
        const double mx = std::exp((rng.next_double() - 0.5) * 60.0);
        const double y = rng.next_bernoulli(0.5) ? my : -my;
        const double x = rng.next_bernoulli(0.5) ? mx : -mx;
        max_err = std::max(max_err, std::abs(fast_atan2(y, x) - std::atan2(y, x)));
    }
    // The documented bound: ≲1e-11 rad absolute (degree-12 kernel) —
    // six orders below the smallest phase decision margin.
    EXPECT_LT(max_err, 2e-11);
}

TEST(FastMath, Atan2QuadrantsAndSignedZeros)
{
    // Exact agreement cases: axes and signed zeros, where std::atan2 has
    // mandated values.
    EXPECT_EQ(fast_atan2(0.0, 1.0), std::atan2(0.0, 1.0));   // +0
    EXPECT_EQ(fast_atan2(-0.0, 1.0), std::atan2(-0.0, 1.0)); // -0
    EXPECT_EQ(fast_atan2(0.0, -1.0), std::atan2(0.0, -1.0)); // +pi
    EXPECT_EQ(fast_atan2(-0.0, -1.0), std::atan2(-0.0, -1.0)); // -pi
    EXPECT_EQ(fast_atan2(1.0, 0.0), std::atan2(1.0, 0.0));   // +pi/2
    EXPECT_EQ(fast_atan2(-1.0, 0.0), std::atan2(-1.0, 0.0)); // -pi/2
    EXPECT_EQ(fast_atan2(0.0, 0.0), std::atan2(0.0, 0.0));   // +0
    EXPECT_EQ(fast_atan2(0.0, -0.0), std::atan2(0.0, -0.0)); // +pi
    EXPECT_EQ(fast_atan2(-0.0, -0.0), std::atan2(-0.0, -0.0)); // -pi
}

TEST(FastMath, LogBoundedRelativeError)
{
    Pcg32 rng{5, 11};
    double max_rel = 0.0;
    // The Box-Muller domain: uniforms in (0, 1], down to 2^-53.
    for (int i = 0; i < 300000; ++i) {
        const double u = std::max(rng.next_double(), 0x1.0p-53);
        const double exact = std::log(u);
        max_rel = std::max(max_rel, std::abs(fast_log(u) - exact)
                                        / std::max(std::abs(exact), 1.0));
    }
    // Plus general normal positives across many decades.
    for (int i = 0; i < 300000; ++i) {
        const double x = std::exp((rng.next_double() - 0.5) * 1000.0);
        const double exact = std::log(x);
        max_rel = std::max(max_rel, std::abs(fast_log(x) - exact)
                                        / std::max(std::abs(exact), 1.0));
    }
    EXPECT_LT(max_rel, 1e-13);
    EXPECT_EQ(fast_log(1.0), 0.0);
}

} // namespace
} // namespace anc
