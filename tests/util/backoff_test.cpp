// util::Backoff (util/backoff.h): the capped-exponential-with-jitter
// schedule behind worker reconnects (engine/jstream.h) and coordinator
// shard relaunches (engine/coordinator.h).  Nothing here sleeps — the
// class only computes delays, which is what makes these tests exact.

#include "util/backoff.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace anc::util {
namespace {

using std::chrono::milliseconds;

Backoff_policy no_jitter(milliseconds initial, milliseconds max, double mult = 2.0)
{
    Backoff_policy policy;
    policy.initial = initial;
    policy.max = max;
    policy.multiplier = mult;
    policy.full_jitter = false;
    return policy;
}

TEST(Backoff, ExactExponentialSequenceWithoutJitter)
{
    Backoff backoff{no_jitter(milliseconds{100}, milliseconds{5000})};
    EXPECT_EQ(backoff.next(), milliseconds{100});
    EXPECT_EQ(backoff.next(), milliseconds{200});
    EXPECT_EQ(backoff.next(), milliseconds{400});
    EXPECT_EQ(backoff.next(), milliseconds{800});
    EXPECT_EQ(backoff.next(), milliseconds{1600});
    EXPECT_EQ(backoff.next(), milliseconds{3200});
    // Capped from here on, forever.
    EXPECT_EQ(backoff.next(), milliseconds{5000});
    EXPECT_EQ(backoff.next(), milliseconds{5000});
    EXPECT_EQ(backoff.attempts(), 8u);
}

TEST(Backoff, ResetRestartsTheSchedule)
{
    Backoff backoff{no_jitter(milliseconds{50}, milliseconds{400})};
    backoff.next();
    backoff.next();
    backoff.reset();
    EXPECT_EQ(backoff.attempts(), 0u);
    EXPECT_EQ(backoff.next(), milliseconds{50});
    EXPECT_EQ(backoff.next(), milliseconds{100});
}

TEST(Backoff, FullJitterStaysWithinTheExponentialBound)
{
    Backoff_policy policy;
    policy.initial = milliseconds{100};
    policy.max = milliseconds{2000};
    policy.full_jitter = true;

    Backoff backoff{policy, /*jitter_seed=*/1234};
    milliseconds bound{100};
    for (int i = 0; i < 20; ++i) {
        const milliseconds delay = backoff.next();
        EXPECT_GE(delay.count(), 0);
        EXPECT_LE(delay, bound);
        bound = std::min(bound * 2, policy.max);
    }
}

TEST(Backoff, JitterIsDeterministicPerSeed)
{
    Backoff_policy policy;
    policy.initial = milliseconds{100};
    policy.max = milliseconds{2000};

    Backoff a{policy, 7}, b{policy, 7}, c{policy, 8};
    std::vector<milliseconds> seq_a, seq_b, seq_c;
    for (int i = 0; i < 10; ++i) {
        seq_a.push_back(a.next());
        seq_b.push_back(b.next());
        seq_c.push_back(c.next());
    }
    EXPECT_EQ(seq_a, seq_b);
    EXPECT_NE(seq_a, seq_c); // different seed, different (jittered) delays
}

TEST(Backoff, MultiplierOneHoldsTheInitialDelay)
{
    Backoff backoff{no_jitter(milliseconds{250}, milliseconds{5000}, 1.0)};
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(backoff.next(), milliseconds{250});
}

} // namespace
} // namespace anc::util
