#include "util/rate_limiter.h"

#include <gtest/gtest.h>

#include <chrono>

namespace anc {
namespace {

using namespace std::chrono_literals;

TEST(RateLimiter, FirstFireIsAlwaysReady)
{
    Rate_limiter gate{100ms};
    EXPECT_TRUE(gate.ready(Rate_limiter::clock::time_point{}));
}

TEST(RateLimiter, SuppressesWithinWindowAndReArmsAfter)
{
    Rate_limiter gate{100ms};
    const Rate_limiter::clock::time_point t0{};
    ASSERT_TRUE(gate.ready(t0));
    EXPECT_FALSE(gate.ready(t0 + 50ms));
    EXPECT_FALSE(gate.ready(t0 + 99ms));
    EXPECT_TRUE(gate.ready(t0 + 100ms));
    // The window re-arms from the last FIRE, not the last call.
    EXPECT_FALSE(gate.ready(t0 + 150ms));
    EXPECT_TRUE(gate.ready(t0 + 200ms));
}

TEST(RateLimiter, ResetForcesNextFire)
{
    Rate_limiter gate{100ms};
    const Rate_limiter::clock::time_point t0{};
    ASSERT_TRUE(gate.ready(t0));
    ASSERT_FALSE(gate.ready(t0 + 1ms));
    gate.reset();
    EXPECT_TRUE(gate.ready(t0 + 2ms)); // the "always draw the final one" path
}

TEST(RateLimiter, ZeroIntervalNeverSuppresses)
{
    Rate_limiter gate{0ms};
    const Rate_limiter::clock::time_point t0{};
    EXPECT_TRUE(gate.ready(t0));
    EXPECT_TRUE(gate.ready(t0));
    EXPECT_TRUE(gate.ready(t0 + 1ms));
}

} // namespace
} // namespace anc
