#include "util/crc.h"

#include <gtest/gtest.h>

#include "util/bits.h"
#include "util/rng.h"

namespace anc {
namespace {

TEST(Crc32, KnownVector)
{
    // CRC-32/IEEE of the ASCII string "123456789" is 0xCBF43926.  The
    // reflected algorithm consumes each byte least-significant-bit first.
    const std::vector<std::uint8_t> ascii{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    Bits bits;
    for (const std::uint8_t byte : ascii) {
        for (int bit = 0; bit < 8; ++bit)
            bits.push_back((byte >> bit) & 1u);
    }
    EXPECT_EQ(crc32(bits), 0xCBF43926u);
}

TEST(Crc32, EmptyInput)
{
    EXPECT_EQ(crc32(Bits{}), 0u); // init ^ final-xor cancel
}

TEST(Crc32, DetectsSingleBitFlip)
{
    Pcg32 rng{21};
    Bits bits = random_bits(512, rng);
    const std::uint32_t original = crc32(bits);
    for (std::size_t i = 0; i < bits.size(); i += 37) {
        bits[i] ^= 1u;
        EXPECT_NE(crc32(bits), original) << "flip at " << i;
        bits[i] ^= 1u;
    }
    EXPECT_EQ(crc32(bits), original);
}

TEST(Crc16, KnownVector)
{
    // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
    const std::vector<std::uint8_t> ascii{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    const Bits bits = unpack_bytes(ascii);
    EXPECT_EQ(crc16(bits), 0x29B1u);
}

TEST(Crc16, DetectsBurstErrors)
{
    Pcg32 rng{22};
    Bits bits = random_bits(256, rng);
    const std::uint16_t original = crc16(bits);
    // Flip a burst of up to 16 consecutive bits: CRC-16 must catch all
    // bursts shorter than its width.
    for (std::size_t burst = 1; burst <= 16; ++burst) {
        for (std::size_t i = 0; i < burst; ++i)
            bits[64 + i] ^= 1u;
        EXPECT_NE(crc16(bits), original) << "burst length " << burst;
        for (std::size_t i = 0; i < burst; ++i)
            bits[64 + i] ^= 1u;
    }
}

TEST(Crc16, DifferentDataDifferentCrc)
{
    Pcg32 rng{23};
    const Bits a = random_bits(128, rng);
    const Bits b = random_bits(128, rng);
    EXPECT_NE(crc16(a), crc16(b));
}

/// Bit-by-bit reference transcriptions of the historical loops.  The
/// production functions were rewritten table-driven (8 bits per lookup);
/// the table form is the textbook identity for the same polynomial
/// division, and these pin it — including the sub-byte tail path — to
/// the original, bit for bit.
std::uint32_t crc32_bitwise(std::span<const std::uint8_t> bits)
{
    std::uint32_t crc = 0xffffffffu;
    for (const std::uint8_t bit : bits) {
        crc ^= static_cast<std::uint32_t>(bit & 1u);
        crc = (crc >> 1u) ^ (0xedb88320u & (0u - (crc & 1u)));
    }
    return ~crc;
}

std::uint16_t crc16_bitwise(std::span<const std::uint8_t> bits)
{
    std::uint16_t crc = 0xffffu;
    for (const std::uint8_t bit : bits) {
        const bool msb = (crc & 0x8000u) != 0;
        crc = static_cast<std::uint16_t>(crc << 1u);
        if (msb != ((bit & 1u) != 0))
            crc ^= 0x1021u;
    }
    return crc;
}

TEST(Crc, TableDrivenMatchesBitwiseReference)
{
    Pcg32 rng{24};
    for (const std::size_t length :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
          std::size_t{9}, std::size_t{63}, std::size_t{64}, std::size_t{509},
          std::size_t{2048}}) {
        const Bits bits = random_bits(length, rng);
        EXPECT_EQ(crc32(bits), crc32_bitwise(bits)) << "length " << length;
        EXPECT_EQ(crc16(bits), crc16_bitwise(bits)) << "length " << length;
    }
}

} // namespace
} // namespace anc
