#include "util/crc.h"

#include <gtest/gtest.h>

#include "util/bits.h"
#include "util/rng.h"

namespace anc {
namespace {

TEST(Crc32, KnownVector)
{
    // CRC-32/IEEE of the ASCII string "123456789" is 0xCBF43926.  The
    // reflected algorithm consumes each byte least-significant-bit first.
    const std::vector<std::uint8_t> ascii{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    Bits bits;
    for (const std::uint8_t byte : ascii) {
        for (int bit = 0; bit < 8; ++bit)
            bits.push_back((byte >> bit) & 1u);
    }
    EXPECT_EQ(crc32(bits), 0xCBF43926u);
}

TEST(Crc32, EmptyInput)
{
    EXPECT_EQ(crc32(Bits{}), 0u); // init ^ final-xor cancel
}

TEST(Crc32, DetectsSingleBitFlip)
{
    Pcg32 rng{21};
    Bits bits = random_bits(512, rng);
    const std::uint32_t original = crc32(bits);
    for (std::size_t i = 0; i < bits.size(); i += 37) {
        bits[i] ^= 1u;
        EXPECT_NE(crc32(bits), original) << "flip at " << i;
        bits[i] ^= 1u;
    }
    EXPECT_EQ(crc32(bits), original);
}

TEST(Crc16, KnownVector)
{
    // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
    const std::vector<std::uint8_t> ascii{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    const Bits bits = unpack_bytes(ascii);
    EXPECT_EQ(crc16(bits), 0x29B1u);
}

TEST(Crc16, DetectsBurstErrors)
{
    Pcg32 rng{22};
    Bits bits = random_bits(256, rng);
    const std::uint16_t original = crc16(bits);
    // Flip a burst of up to 16 consecutive bits: CRC-16 must catch all
    // bursts shorter than its width.
    for (std::size_t burst = 1; burst <= 16; ++burst) {
        for (std::size_t i = 0; i < burst; ++i)
            bits[64 + i] ^= 1u;
        EXPECT_NE(crc16(bits), original) << "burst length " << burst;
        for (std::size_t i = 0; i < burst; ++i)
            bits[64 + i] ^= 1u;
    }
}

TEST(Crc16, DifferentDataDifferentCrc)
{
    Pcg32 rng{23};
    const Bits a = random_bits(128, rng);
    const Bits b = random_bits(128, rng);
    EXPECT_NE(crc16(a), crc16(b));
}

} // namespace
} // namespace anc
