#include "fec/hamming.h"

#include <gtest/gtest.h>

#include "util/bits.h"
#include "util/rng.h"

namespace anc::fec {
namespace {

TEST(Hamming74, AllNibblesRoundTrip)
{
    for (std::uint8_t nibble = 0; nibble < 16; ++nibble)
        EXPECT_EQ(hamming74_decode_codeword(hamming74_encode_nibble(nibble)), nibble);
}

TEST(Hamming74, CorrectsEverySingleBitError)
{
    for (std::uint8_t nibble = 0; nibble < 16; ++nibble) {
        const std::uint8_t codeword = hamming74_encode_nibble(nibble);
        for (int bit = 0; bit < 7; ++bit) {
            const auto corrupted = static_cast<std::uint8_t>(codeword ^ (1u << bit));
            EXPECT_EQ(hamming74_decode_codeword(corrupted), nibble)
                << "nibble " << int(nibble) << " bit " << bit;
        }
    }
}

TEST(Hamming74, CodewordsHaveMinDistanceThree)
{
    for (std::uint8_t x = 0; x < 16; ++x) {
        for (std::uint8_t y = 0; y < 16; ++y) {
            if (x == y)
                continue;
            const std::uint8_t diff =
                hamming74_encode_nibble(x) ^ hamming74_encode_nibble(y);
            EXPECT_GE(__builtin_popcount(diff), 3);
        }
    }
}

TEST(Hamming74, SequenceRoundTrip)
{
    Pcg32 rng{201};
    const Bits data = random_bits(400, rng); // multiple of 4
    const Bits coded = hamming74_encode(data);
    EXPECT_EQ(coded.size(), data.size() / 4 * 7);
    EXPECT_EQ(hamming74_decode(coded), data);
}

TEST(Hamming74, SequencePadsToNibble)
{
    const Bits data{1, 0, 1}; // padded to 1010? no: 1,0,1,0-pad
    const Bits coded = hamming74_encode(data);
    EXPECT_EQ(coded.size(), 7u);
    const Bits decoded = hamming74_decode(coded);
    ASSERT_EQ(decoded.size(), 4u);
    EXPECT_EQ(decoded[0], 1);
    EXPECT_EQ(decoded[1], 0);
    EXPECT_EQ(decoded[2], 1);
    EXPECT_EQ(decoded[3], 0); // the pad
}

TEST(Hamming74, CorrectsScatteredErrors)
{
    Pcg32 rng{202};
    const Bits data = random_bits(280, rng);
    Bits coded = hamming74_encode(data);
    // One error per codeword: all must be corrected.
    for (std::size_t block = 0; block + 7 <= coded.size(); block += 7)
        coded[block + (block / 7) % 7] ^= 1u;
    EXPECT_EQ(hamming74_decode(coded), data);
}

TEST(Hamming74, DecodeRejectsBadLength)
{
    EXPECT_THROW(hamming74_decode(Bits(8, 0)), std::invalid_argument);
}

} // namespace
} // namespace anc::fec
