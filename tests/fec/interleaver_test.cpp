#include "fec/interleaver.h"

#include <gtest/gtest.h>

#include "util/bits.h"
#include "util/rng.h"

namespace anc::fec {
namespace {

TEST(Interleaver, RoundTrip)
{
    Pcg32 rng{211};
    const Bits data = random_bits(8 * 7 * 5, rng);
    const Block_interleaver interleaver{8, 7};
    EXPECT_EQ(interleaver.deinterleave(interleaver.interleave(data)), data);
}

TEST(Interleaver, RoundTripWithTail)
{
    Pcg32 rng{212};
    const Bits data = random_bits(8 * 7 + 13, rng); // one block plus a tail
    const Block_interleaver interleaver{8, 7};
    EXPECT_EQ(interleaver.deinterleave(interleaver.interleave(data)), data);
}

TEST(Interleaver, SpreadsBursts)
{
    // A burst of `rows` consecutive errors in the interleaved domain must
    // land in distinct rows (= distinct codewords) after deinterleaving.
    const std::size_t rows = 8;
    const std::size_t cols = 7;
    const Block_interleaver interleaver{rows, cols};
    Bits data(rows * cols, 0);
    Bits on_air = interleaver.interleave(data);
    for (std::size_t i = 0; i < rows; ++i)
        on_air[20 + i] ^= 1u; // a burst of 8
    const Bits received = interleaver.deinterleave(on_air);

    // Count errors per 7-bit codeword: no codeword may carry more than 2.
    for (std::size_t block = 0; block < rows; ++block) {
        std::size_t errors = 0;
        for (std::size_t i = 0; i < cols; ++i)
            errors += received[block * cols + i];
        EXPECT_LE(errors, 2u) << "codeword " << block;
    }
}

TEST(Interleaver, IdentityForTinyInput)
{
    const Block_interleaver interleaver{8, 7};
    const Bits data{1, 0, 1};
    EXPECT_EQ(interleaver.interleave(data), data);
}

TEST(Interleaver, RejectsZeroDimensions)
{
    EXPECT_THROW((Block_interleaver{0, 7}), std::invalid_argument);
    EXPECT_THROW((Block_interleaver{8, 0}), std::invalid_argument);
}

} // namespace
} // namespace anc::fec
