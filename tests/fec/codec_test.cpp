#include "fec/codec.h"

#include <gtest/gtest.h>

#include "util/bits.h"
#include "util/rng.h"

namespace anc::fec {
namespace {

TEST(FecCodec, RoundTrip)
{
    Pcg32 rng{221};
    const Bits data = random_bits(1000, rng);
    const Fec_codec codec;
    const Bits coded = codec.encode(data);
    EXPECT_EQ(coded.size(), codec.coded_size(data.size()));
    EXPECT_EQ(codec.decode(coded, data.size()), data);
}

TEST(FecCodec, CorrectsBurstWithInterleaving)
{
    Pcg32 rng{222};
    const Bits data = random_bits(224, rng); // 56 codewords = 7 blocks of 8
    const Fec_codec codec{8};
    Bits coded = codec.encode(data);
    // An 8-bit burst: without interleaving this kills a codeword (2+ errors
    // in one 7-bit word); with 8x7 interleaving each error lands in a
    // different codeword.
    for (std::size_t i = 100; i < 108; ++i)
        coded[i] ^= 1u;
    EXPECT_EQ(codec.decode(coded, data.size()), data);
}

TEST(FecCodec, RandomSparseErrorsMostlyCorrected)
{
    Pcg32 rng{223};
    const Bits data = random_bits(2000, rng);
    const Fec_codec codec{8};
    Bits coded = codec.encode(data);
    // ~2% BER, the paper's ANC operating point.
    std::size_t flips = 0;
    for (auto& bit : coded) {
        if (rng.next_bernoulli(0.02)) {
            bit ^= 1u;
            ++flips;
        }
    }
    ASSERT_GT(flips, 0u);
    const Bits decoded = codec.decode(coded, data.size());
    const double residual = bit_error_rate(decoded, data);
    // Hamming(7,4) at 2% input BER leaves well under 1% residual errors.
    EXPECT_LT(residual, 0.01);
}

TEST(FecCodec, RedundancyModelMatchesPaperRule)
{
    // §11.4: 4% BER -> 8% extra redundancy.
    EXPECT_DOUBLE_EQ(redundancy_overhead(0.04), 0.08);
    EXPECT_DOUBLE_EQ(redundancy_overhead(0.0), 0.0);
    EXPECT_DOUBLE_EQ(redundancy_overhead(0.9), 1.0); // capped
}

TEST(FecCodec, ThroughputFactor)
{
    EXPECT_DOUBLE_EQ(throughput_factor(0.0), 1.0);
    EXPECT_NEAR(throughput_factor(0.04), 1.0 / 1.08, 1e-12);
    EXPECT_GT(throughput_factor(0.01), throughput_factor(0.05));
}

TEST(FecCodec, CodedSizeFormula)
{
    const Fec_codec codec;
    EXPECT_EQ(codec.coded_size(4), 7u);
    EXPECT_EQ(codec.coded_size(5), 14u);
    EXPECT_EQ(codec.coded_size(1000), 250u * 7u);
    EXPECT_NEAR(codec.rate(), 4.0 / 7.0, 1e-12);
}

} // namespace
} // namespace anc::fec
