#include "core/relay.h"

#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "dsp/energy_scan.h"
#include "dsp/msk.h"
#include "dsp/ops.h"
#include "util/rng.h"

namespace anc {
namespace {

phy::Frame_header make_header(std::uint8_t src, std::uint8_t dst, std::uint16_t seq)
{
    phy::Frame_header header;
    header.src = src;
    header.dst = dst;
    header.seq = seq;
    header.payload_bits = 64;
    return header;
}

bool opposite(const phy::Frame_header& x, const phy::Frame_header& y)
{
    return x.src == y.dst && x.dst == y.src;
}

TEST(Relay, DecodeWhenFirstHeaderKnown)
{
    Sent_packet_buffer buffer;
    Stored_frame frame;
    frame.header = make_header(1, 2, 5);
    buffer.store(frame);
    EXPECT_EQ(decide_relay_action(make_header(1, 2, 5), make_header(2, 1, 9), buffer, opposite),
              Relay_action::decode);
}

TEST(Relay, DecodeWhenSecondHeaderKnown)
{
    Sent_packet_buffer buffer;
    Stored_frame frame;
    frame.header = make_header(2, 1, 9);
    buffer.store(frame);
    EXPECT_EQ(decide_relay_action(make_header(1, 2, 5), make_header(2, 1, 9), buffer, opposite),
              Relay_action::decode);
}

TEST(Relay, ForwardWhenOppositeDirections)
{
    const Sent_packet_buffer buffer;
    EXPECT_EQ(decide_relay_action(make_header(1, 2, 5), make_header(2, 1, 9), buffer, opposite),
              Relay_action::forward);
}

TEST(Relay, DropWhenSameDirection)
{
    const Sent_packet_buffer buffer;
    EXPECT_EQ(decide_relay_action(make_header(1, 2, 5), make_header(3, 2, 9), buffer, opposite),
              Relay_action::drop);
}

TEST(Relay, DropWhenHeadersMissing)
{
    const Sent_packet_buffer buffer;
    EXPECT_EQ(decide_relay_action(std::nullopt, make_header(1, 2, 5), buffer, opposite),
              Relay_action::drop);
    EXPECT_EQ(decide_relay_action(std::nullopt, std::nullopt, buffer, opposite),
              Relay_action::drop);
}

TEST(Relay, AmplifyNormalizesPower)
{
    // A weak received mix must be re-amplified to the router's transmit
    // power P (§7.5 / Appendix C).
    Pcg32 rng{701};
    const Bits bits = random_bits(500, rng);
    const dsp::Msk_modulator modulator{0.1, 0.0}; // heavily attenuated
    dsp::Signal received = modulator.modulate(bits);
    const double noise_power = 1e-5;
    chan::Awgn noise{noise_power, Pcg32{702}};
    noise.add_in_place(received);

    const auto forwarded = amplify_and_forward(received, noise_power, 1.0);
    ASSERT_TRUE(forwarded.has_value());
    EXPECT_NEAR(dsp::power(*forwarded), 1.0, 0.05);
}

TEST(Relay, AmplifyTrimsSilence)
{
    Pcg32 rng{703};
    const Bits bits = random_bits(300, rng);
    const dsp::Msk_modulator modulator{1.0, 0.0};
    dsp::Signal stream(400, dsp::Sample{0.0, 0.0});
    dsp::accumulate(stream, modulator.modulate(bits), 400);
    stream.resize(stream.size() + 200, dsp::Sample{0.0, 0.0});
    const double noise_power = 1e-4;
    chan::Awgn noise{noise_power, Pcg32{704}};
    noise.add_in_place(stream);

    const auto forwarded = amplify_and_forward(stream, noise_power, 1.0);
    ASSERT_TRUE(forwarded.has_value());
    // The active region is ~301 samples; the trimmed forward should be
    // close to that, not the 901-sample padded stream.
    EXPECT_LT(forwarded->size(), 400u);
    EXPECT_GT(forwarded->size(), 250u);
}

TEST(Relay, AmplifyNothingWhenSilent)
{
    dsp::Signal silence(500, dsp::Sample{0.0, 0.0});
    chan::Awgn noise{1e-4, Pcg32{705}};
    noise.add_in_place(silence);
    EXPECT_FALSE(amplify_and_forward(silence, 1e-4, 1.0).has_value());
}

TEST(Relay, AmplifiedNoiseRidesAlong)
{
    // The relay cannot separate noise from signal: after normalization the
    // in-band noise is amplified by the same factor — the low-SNR penalty
    // of §8.
    Pcg32 rng{706};
    const Bits bits = random_bits(2000, rng);
    const dsp::Msk_modulator modulator{0.1, 0.0};
    dsp::Signal received = modulator.modulate(bits);
    const double noise_power = 0.01; // SNR at relay = 0 dB
    chan::Awgn noise{noise_power, Pcg32{707}};
    noise.add_in_place(received);

    // At 0 dB the usual energy threshold would miss the packet; drop it
    // (the scenario is intentionally extreme to expose noise
    // amplification).
    phy::Packet_detector::Config low_threshold;
    low_threshold.energy_threshold_db = -3.0;
    const auto forwarded = amplify_and_forward(received, noise_power, 1.0, low_threshold);
    ASSERT_TRUE(forwarded.has_value());
    // Output power 1.0 is half signal, half amplified noise.
    const double gain = 1.0 / (0.1 * 0.1 + noise_power);
    const double amplified_noise = noise_power * gain;
    EXPECT_NEAR(amplified_noise, 0.5, 0.05);
}

} // namespace
} // namespace anc
