#include "core/sent_packet_buffer.h"

#include <gtest/gtest.h>

namespace anc {
namespace {

phy::Frame_header make_header(std::uint8_t src, std::uint8_t dst, std::uint16_t seq)
{
    phy::Frame_header header;
    header.src = src;
    header.dst = dst;
    header.seq = seq;
    header.payload_bits = 100;
    return header;
}

Stored_frame make_frame(std::uint8_t src, std::uint8_t dst, std::uint16_t seq)
{
    Stored_frame frame;
    frame.header = make_header(src, dst, seq);
    frame.frame_bits = Bits{1, 0, 1};
    frame.payload = Bits{1, 1};
    return frame;
}

TEST(SentPacketBuffer, StoreAndLookup)
{
    Sent_packet_buffer buffer;
    buffer.store(make_frame(1, 2, 10));
    EXPECT_TRUE(buffer.contains(make_header(1, 2, 10)));
    const Stored_frame* found = buffer.lookup(make_header(1, 2, 10));
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->header.seq, 10);
}

TEST(SentPacketBuffer, LookupMissReturnsNull)
{
    Sent_packet_buffer buffer;
    buffer.store(make_frame(1, 2, 10));
    EXPECT_EQ(buffer.lookup(make_header(1, 2, 11)), nullptr);
    EXPECT_EQ(buffer.lookup(make_header(2, 1, 10)), nullptr);
    EXPECT_FALSE(buffer.contains(make_header(9, 9, 9)));
}

TEST(SentPacketBuffer, PayloadBitsFieldIgnoredInKey)
{
    // Identity is (src, dst, seq); a header decoded from the air may carry
    // the same identity with the true payload length.
    Sent_packet_buffer buffer;
    buffer.store(make_frame(1, 2, 10));
    phy::Frame_header probe = make_header(1, 2, 10);
    probe.payload_bits = 9999;
    EXPECT_TRUE(buffer.contains(probe));
}

TEST(SentPacketBuffer, OverwriteSameKey)
{
    Sent_packet_buffer buffer;
    Stored_frame first = make_frame(1, 2, 10);
    first.payload = Bits{0, 0, 0};
    buffer.store(first);
    Stored_frame second = make_frame(1, 2, 10);
    second.payload = Bits{1, 1, 1};
    buffer.store(second);
    EXPECT_EQ(buffer.size(), 1u);
    EXPECT_EQ(buffer.lookup(make_header(1, 2, 10))->payload, (Bits{1, 1, 1}));
}

TEST(SentPacketBuffer, EvictsOldestBeyondCapacity)
{
    Sent_packet_buffer buffer{3};
    buffer.store(make_frame(1, 2, 1));
    buffer.store(make_frame(1, 2, 2));
    buffer.store(make_frame(1, 2, 3));
    buffer.store(make_frame(1, 2, 4));
    EXPECT_EQ(buffer.size(), 3u);
    EXPECT_FALSE(buffer.contains(make_header(1, 2, 1)));
    EXPECT_TRUE(buffer.contains(make_header(1, 2, 4)));
}

TEST(SentPacketBuffer, ZeroCapacityRejected)
{
    EXPECT_THROW(Sent_packet_buffer{0}, std::invalid_argument);
}

} // namespace
} // namespace anc
