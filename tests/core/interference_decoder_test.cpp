#include "core/interference_decoder.h"

#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "dsp/msk.h"
#include "dsp/ops.h"
#include "util/bits.h"
#include "util/rng.h"

namespace anc {
namespace {

struct Collision {
    Bits known_bits;
    Bits unknown_bits;
    dsp::Signal mix;          // aligned at the known signal's first sample
    std::size_t unknown_start; // sample offset of the unknown signal
};

Collision make_collision(double a, double b, std::size_t bits_count,
                         std::size_t unknown_offset, std::uint64_t seed,
                         double noise_power = 0.0)
{
    Pcg32 rng{seed};
    Collision c;
    c.known_bits = random_bits(bits_count, rng);
    c.unknown_bits = random_bits(bits_count, rng);
    c.unknown_start = unknown_offset;
    const dsp::Msk_modulator mod_a{a, rng.next_double() * 6.28};
    const dsp::Msk_modulator mod_b{b, rng.next_double() * 6.28};
    c.mix = mod_a.modulate(c.known_bits);
    dsp::accumulate(c.mix, mod_b.modulate(c.unknown_bits), unknown_offset);
    if (noise_power > 0.0) {
        chan::Awgn noise{noise_power, rng.fork(7)};
        noise.add_in_place(c.mix);
    }
    return c;
}

/// BER of the decoded unknown bits over the region where the unknown
/// signal was actually present.
double unknown_ber(const Collision& c, const Interference_decode_result& result)
{
    std::size_t errors = 0;
    std::size_t total = 0;
    for (std::size_t k = 0; k < c.unknown_bits.size(); ++k) {
        const std::size_t transition = c.unknown_start + k;
        if (transition >= result.bits.size())
            break;
        errors += (result.bits[transition] != c.unknown_bits[k]);
        ++total;
    }
    return total == 0 ? 1.0 : static_cast<double>(errors) / static_cast<double>(total);
}

TEST(InterferenceDecoder, PerfectOverlapNoiseless)
{
    const Collision c = make_collision(1.0, 0.8, 400, 0, 601);
    const auto known_diffs = dsp::phase_differences_for_bits(c.known_bits);
    const Interference_decoder decoder;
    const auto result = decoder.decode(c.mix, known_diffs, 1.0, 0.8);
    EXPECT_LT(unknown_ber(c, result), 0.01);
}

TEST(InterferenceDecoder, PartialOverlapNoiseless)
{
    const Collision c = make_collision(1.0, 0.8, 400, 100, 602);
    const auto known_diffs = dsp::phase_differences_for_bits(c.known_bits);
    const Interference_decoder decoder;
    const auto result = decoder.decode(c.mix, known_diffs, 1.0, 0.8);
    EXPECT_LT(unknown_ber(c, result), 0.01);
}

TEST(InterferenceDecoder, EqualAmplitudes)
{
    // SIR = 0 dB, the hardest symmetric case; paper reports ~2% BER there
    // on real radios.  Noiseless simulation should do much better.
    const Collision c = make_collision(1.0, 1.0, 600, 50, 603);
    const auto known_diffs = dsp::phase_differences_for_bits(c.known_bits);
    const Interference_decoder decoder;
    const auto result = decoder.decode(c.mix, known_diffs, 1.0, 1.0);
    EXPECT_LT(unknown_ber(c, result), 0.05);
}

TEST(InterferenceDecoder, ModerateNoise)
{
    // SNR 25 dB — the paper's operating regime.
    const Collision c = make_collision(1.0, 0.9, 800, 60, 604, 1.0 / 316.0);
    const auto known_diffs = dsp::phase_differences_for_bits(c.known_bits);
    const Interference_decoder decoder;
    const auto result = decoder.decode(c.mix, known_diffs, 1.0, 0.9);
    EXPECT_LT(unknown_ber(c, result), 0.08);
}

TEST(InterferenceDecoder, StrongUnknownIsEasy)
{
    // SIR +6 dB (unknown twice the amplitude): paper says BER -> 0.
    const Collision c = make_collision(0.5, 1.0, 600, 40, 605, 1.0 / 316.0);
    const auto known_diffs = dsp::phase_differences_for_bits(c.known_bits);
    const Interference_decoder decoder;
    const auto result = decoder.decode(c.mix, known_diffs, 0.5, 1.0);
    EXPECT_LT(unknown_ber(c, result), 0.02);
}

TEST(InterferenceDecoder, ToleratesAmplitudeEstimateError)
{
    // Amplitudes 10% off must not collapse decoding (the paper's
    // robustness argument for working with phase differences).
    const Collision c = make_collision(1.0, 0.8, 600, 50, 606, 1.0 / 316.0);
    const auto known_diffs = dsp::phase_differences_for_bits(c.known_bits);
    const Interference_decoder decoder;
    const auto result = decoder.decode(c.mix, known_diffs, 1.08, 0.74);
    EXPECT_LT(unknown_ber(c, result), 0.1);
}

TEST(InterferenceDecoder, TailDecodedAsSingleSignal)
{
    // Transitions past the known signal's extent must demodulate the
    // unknown cleanly (its interference-free tail).
    const Collision c = make_collision(1.0, 0.8, 300, 150, 607);
    const auto known_diffs = dsp::phase_differences_for_bits(c.known_bits);
    const Interference_decoder decoder;
    const auto result = decoder.decode(c.mix, known_diffs, 1.0, 0.8);
    // Unknown bits with transitions beyond known_diffs.size():
    std::size_t errors = 0;
    std::size_t total = 0;
    for (std::size_t k = 0; k < c.unknown_bits.size(); ++k) {
        const std::size_t transition = c.unknown_start + k;
        if (transition < known_diffs.size() || transition >= result.bits.size())
            continue;
        errors += (result.bits[transition] != c.unknown_bits[k]);
        ++total;
    }
    ASSERT_GT(total, 100u);
    EXPECT_EQ(errors, 0u);
}

TEST(InterferenceDecoder, MatchErrorsSmallInOverlap)
{
    const Collision c = make_collision(1.0, 0.8, 400, 0, 608);
    const auto known_diffs = dsp::phase_differences_for_bits(c.known_bits);
    const Interference_decoder decoder;
    const auto result = decoder.decode(c.mix, known_diffs, 1.0, 0.8);
    ASSERT_EQ(result.match_errors.size(), known_diffs.size());
    double mean_error = 0.0;
    for (const double e : result.match_errors)
        mean_error += e;
    mean_error /= static_cast<double>(result.match_errors.size());
    EXPECT_LT(mean_error, 0.3);
}

TEST(InterferenceDecoder, OutputShapes)
{
    const Collision c = make_collision(1.0, 0.8, 100, 0, 609);
    const auto known_diffs = dsp::phase_differences_for_bits(c.known_bits);
    const Interference_decoder decoder;
    const auto result = decoder.decode(c.mix, known_diffs, 1.0, 0.8);
    EXPECT_EQ(result.bits.size(), c.mix.size() - 1);
    EXPECT_EQ(result.phi_differences.size(), c.mix.size() - 1);
}

TEST(InterferenceDecoder, EmptyAndTinyInputs)
{
    const Interference_decoder decoder;
    const std::vector<double> no_diffs;
    EXPECT_TRUE(decoder.decode(dsp::Signal{}, no_diffs, 1.0, 1.0).bits.empty());
    EXPECT_TRUE(decoder.decode(dsp::Signal{dsp::Sample{1.0, 0.0}}, no_diffs, 1.0, 1.0)
                    .bits.empty());
}

TEST(InterferenceDecoder, RejectsBadAmplitudes)
{
    const Interference_decoder decoder;
    const dsp::Signal two(2, dsp::Sample{1.0, 0.0});
    const std::vector<double> no_diffs;
    EXPECT_THROW(decoder.decode(two, no_diffs, 0.0, 1.0), std::invalid_argument);
}

TEST(InterferenceDecoder, BackwardDomainSymmetry)
{
    // Decode the same collision through the time-reversal transform with
    // the roles swapped: the "second" signal becomes the known one.
    const Collision c = make_collision(0.9, 1.0, 400, 80, 610);
    // In the reversed domain the unknown (previously known) signal starts
    // at offset 0 is false in general; we only check BER over the overlap.
    const dsp::Signal reversed_mix = dsp::time_reversed(c.mix);
    // The previously-unknown signal is now the known one.  Its samples end
    // at c.unknown_start + len + 1 in forward time; in reversed time it
    // starts at mix.size() - (unknown_start + len(bits) + 1).
    const std::size_t unknown_len_samples = c.unknown_bits.size() + 1;
    const std::size_t rev_start = c.mix.size() - (c.unknown_start + unknown_len_samples);
    const Bits known_rev = mirrored(c.unknown_bits);
    const auto known_diffs = dsp::phase_differences_for_bits(known_rev);
    const Interference_decoder decoder;
    const dsp::Signal aligned = dsp::slice(reversed_mix, rev_start, reversed_mix.size());
    const auto result = decoder.decode(aligned, known_diffs, 1.0, 0.9);

    // The decoded stream should now carry the *first* signal's bits in
    // reverse order, starting at transition (len of reversed prefix).
    const Bits expected = mirrored(c.known_bits);
    // known (forward) signal occupied samples [0, bits+1); in reversed,
    // relative to `aligned`, its bits start at:
    const std::size_t offset = c.mix.size() - (c.known_bits.size() + 1) - rev_start;
    std::size_t errors = 0;
    std::size_t total = 0;
    for (std::size_t k = 0; k < expected.size(); ++k) {
        const std::size_t transition = offset + k;
        if (transition >= result.bits.size())
            break;
        errors += (result.bits[transition] != expected[k]);
        ++total;
    }
    ASSERT_GT(total, 300u);
    EXPECT_LT(static_cast<double>(errors) / static_cast<double>(total), 0.02);
}

TEST(InterferenceDecoder, SimdDecodeIsBitIdenticalToFastDecode)
{
    // The simd path runs the fast profile's SoA decomposition through
    // the batched lane kernels (util/simd.h); its phi differences,
    // match errors, and bits must equal the fast path's exactly —
    // including the scalar tail past the lane blocks and the unknown
    // region past the known signal.
    Pcg32 rng{0x51D, 2};
    const Bits known_bits = random_bits(700, rng);
    const Bits other_bits = random_bits(900, rng);
    const dsp::Msk_modulator mod_a{0.95, 0.3};
    const dsp::Msk_modulator mod_b{0.90, 1.1};
    dsp::Signal mix = mod_a.modulate(known_bits);
    dsp::accumulate(mix, mod_b.modulate(other_bits), 120);
    chan::Awgn noise{0.01, rng.fork(1)};
    noise.add_in_place(mix);
    const auto known_diffs = dsp::phase_differences_for_bits(known_bits);

    const Interference_decoder fast{dsp::Math_profile::fast};
    const Interference_decoder simd{dsp::Math_profile::simd};
    const auto fast_result = fast.decode(mix, known_diffs, 0.95, 0.90);
    const auto simd_result = simd.decode(mix, known_diffs, 0.95, 0.90);
    EXPECT_EQ(simd_result.bits, fast_result.bits);
    EXPECT_EQ(simd_result.phi_differences, fast_result.phi_differences);
    EXPECT_EQ(simd_result.match_errors, fast_result.match_errors);
}

} // namespace
} // namespace anc
