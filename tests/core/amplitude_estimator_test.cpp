#include "core/amplitude_estimator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <optional>

#include "channel/awgn.h"
#include "dsp/energy_scan.h"
#include "channel/link.h"
#include "dsp/msk.h"
#include "dsp/ops.h"
#include "util/bits.h"
#include "util/rng.h"

namespace anc {
namespace {

/// Interfered MSK mix with amplitudes a and b over `bits_count` symbols.
/// `drift` is the relative carrier-frequency offset (radians/symbol)
/// between the two transmitters; real radio pairs always have one, and
/// the paper's Eq. 5-6 estimator implicitly relies on it (it makes
/// cos(theta - phi) sweep the circle instead of sitting on the MSK
/// phase lattice).
dsp::Signal make_mix(double a, double b, std::size_t bits_count, std::uint64_t seed,
                     double noise_power = 0.0, double drift = 0.004)
{
    Pcg32 rng{seed};
    const Bits bits_a = random_bits(bits_count, rng);
    const Bits bits_b = random_bits(bits_count, rng);
    const dsp::Msk_modulator mod_a{a, rng.next_double() * 6.28};
    const dsp::Msk_modulator mod_b{b, rng.next_double() * 6.28};
    chan::Link_params drifting;
    drifting.phase_drift = drift;
    dsp::Signal mix = dsp::added(mod_a.modulate(bits_a),
                                 chan::Link_channel{drifting}.apply(mod_b.modulate(bits_b)));
    if (noise_power > 0.0) {
        chan::Awgn noise{noise_power, rng.fork(99)};
        noise.add_in_place(mix);
    }
    return mix;
}

TEST(AmplitudeEstimator, RecoversDistinctAmplitudesNoiselessly)
{
    const dsp::Signal mix = make_mix(1.0, 0.5, 4000, 511);
    const auto estimate = estimate_amplitudes(mix, 0.0);
    ASSERT_TRUE(estimate.has_value());
    EXPECT_NEAR(estimate->a, 1.0, 0.06);
    EXPECT_NEAR(estimate->b, 0.5, 0.06);
}

TEST(AmplitudeEstimator, MuIsSumOfSquares)
{
    const dsp::Signal mix = make_mix(1.0, 0.7, 6000, 512);
    const auto estimate = estimate_amplitudes(mix, 0.0);
    ASSERT_TRUE(estimate.has_value());
    EXPECT_NEAR(estimate->mu, 1.0 + 0.49, 0.05);
}

TEST(AmplitudeEstimator, SigmaMatchesEq6)
{
    // sigma = A^2 + B^2 + 4AB/pi (Eq. 6).
    const double a = 1.0;
    const double b = 0.6;
    const dsp::Signal mix = make_mix(a, b, 8000, 513);
    const auto estimate = estimate_amplitudes(mix, 0.0);
    ASSERT_TRUE(estimate.has_value());
    const double expected_sigma = a * a + b * b + 4.0 * a * b / std::numbers::pi;
    EXPECT_NEAR(estimate->sigma, expected_sigma, 0.08);
}

TEST(AmplitudeEstimator, EqualAmplitudes)
{
    const dsp::Signal mix = make_mix(0.8, 0.8, 6000, 514);
    const auto estimate = estimate_amplitudes(mix, 0.0);
    ASSERT_TRUE(estimate.has_value());
    EXPECT_NEAR(estimate->a, 0.8, 0.1);
    EXPECT_NEAR(estimate->b, 0.8, 0.1);
}

TEST(AmplitudeEstimator, NoiseCompensation)
{
    const double noise_power = 0.01; // 20 dB below the stronger signal
    const dsp::Signal mix = make_mix(1.0, 0.5, 8000, 515, noise_power);
    const auto estimate = estimate_amplitudes(mix, noise_power);
    ASSERT_TRUE(estimate.has_value());
    EXPECT_NEAR(estimate->a, 1.0, 0.08);
    EXPECT_NEAR(estimate->b, 0.5, 0.08);
}

TEST(AmplitudeEstimator, OrdersAmplitudes)
{
    // Returned with a >= b regardless of which signal is stronger.
    const dsp::Signal mix = make_mix(0.4, 1.2, 4000, 516);
    const auto estimate = estimate_amplitudes(mix, 0.0);
    ASSERT_TRUE(estimate.has_value());
    EXPECT_GE(estimate->a, estimate->b);
    EXPECT_NEAR(estimate->a, 1.2, 0.1);
    EXPECT_NEAR(estimate->b, 0.4, 0.1);
}

TEST(AmplitudeEstimator, ShortWindowRejected)
{
    const dsp::Signal mix = make_mix(1.0, 0.5, 16, 517);
    EXPECT_FALSE(estimate_amplitudes(mix, 0.0, 32).has_value());
}

TEST(AmplitudeEstimator, WithKnownAmplitude)
{
    const dsp::Signal mix = make_mix(1.0, 0.5, 3000, 518, 0.01);
    const auto estimate = estimate_with_known_amplitude(mix, 0.01, 1.0);
    ASSERT_TRUE(estimate.has_value());
    EXPECT_DOUBLE_EQ(estimate->a, 1.0);
    EXPECT_NEAR(estimate->b, 0.5, 0.05);
}

TEST(AmplitudeEstimator, KnownAmplitudeTooLargeFails)
{
    // If the claimed known amplitude exceeds the total power there is no
    // valid unknown amplitude.
    const dsp::Signal mix = make_mix(1.0, 0.5, 3000, 519);
    EXPECT_FALSE(estimate_with_known_amplitude(mix, 0.0, 2.0).has_value());
}

TEST(AmplitudeEstimator, CleanRegionAmplitude)
{
    Pcg32 rng{520};
    const Bits bits = random_bits(2000, rng);
    const dsp::Msk_modulator modulator{0.7, 0.0};
    dsp::Signal signal = modulator.modulate(bits);
    chan::Awgn noise{0.005, Pcg32{521}};
    noise.add_in_place(signal);
    EXPECT_NEAR(amplitude_from_clean_region(signal, 0.005), 0.7, 0.02);
}

TEST(AmplitudeEstimator, CleanRegionBelowNoiseFloorIsZero)
{
    dsp::Signal nothing(100, dsp::Sample{0.0, 0.0});
    EXPECT_DOUBLE_EQ(amplitude_from_clean_region(nothing, 0.01), 0.0);
}

TEST(AmplitudeEstimator, VarianceEstimatorRecoversAmplitudes)
{
    const dsp::Signal mix = make_mix(1.0, 0.5, 6000, 531);
    const auto estimate = estimate_amplitudes_by_variance(mix, 0.0);
    ASSERT_TRUE(estimate.has_value());
    EXPECT_NEAR(estimate->a, 1.0, 0.06);
    EXPECT_NEAR(estimate->b, 0.5, 0.06);
}

TEST(AmplitudeEstimator, WithoutDriftBlindEstimationDegenerates)
{
    // With zero relative CFO, MSK keeps the two phases a *fixed* offset
    // delta apart (steps are +-pi/2, so theta - phi only flips by pi):
    // |y|^2 observes 2AB·(+-cos delta) and the product AB is fundamentally
    // confounded with the unobservable cos delta.  No blind estimator can
    // recover A and B — the total power mu is the only trustworthy
    // statistic.  (Real radio pairs always drift, which is exactly what
    // the paper's Eq. 5-6 rely on.)
    const dsp::Signal mix = make_mix(1.0, 0.5, 6000, 532, 0.0, /*drift=*/0.0);
    const auto estimate = estimate_amplitudes_by_variance(mix, 0.0);
    ASSERT_TRUE(estimate.has_value());
    EXPECT_NEAR(estimate->mu, 1.25, 0.05); // mu = A^2 + B^2 still holds
    EXPECT_GE(estimate->a, estimate->b);   // and the split stays ordered
}

TEST(AmplitudeEstimator, VarianceEstimatorNoiseCompensation)
{
    const double noise_power = 0.01;
    const dsp::Signal mix = make_mix(1.0, 0.6, 8000, 533, noise_power);
    const auto estimate = estimate_amplitudes_by_variance(mix, noise_power);
    ASSERT_TRUE(estimate.has_value());
    EXPECT_NEAR(estimate->a, 1.0, 0.08);
    EXPECT_NEAR(estimate->b, 0.6, 0.08);
}

TEST(AmplitudeEstimator, VarianceEstimatorShortWindowRejected)
{
    const dsp::Signal mix = make_mix(1.0, 0.5, 16, 534);
    EXPECT_FALSE(estimate_amplitudes_by_variance(mix, 0.0, 32).has_value());
}

TEST(AmplitudeEstimator, SirSweepStaysAccurate)
{
    // Across the SIR range of Fig. 13 (-3..+4 dB) both amplitudes must be
    // recovered within ~10%.
    for (const double b : {0.70, 0.8, 0.9, 1.0, 1.12, 1.25, 1.4, 1.58}) {
        const dsp::Signal mix = make_mix(1.0, b, 8000, 522 + static_cast<std::uint64_t>(b * 100));
        const auto estimate = estimate_amplitudes(mix, 0.0);
        ASSERT_TRUE(estimate.has_value()) << "b=" << b;
        const double hi = std::max(1.0, b);
        const double lo = std::min(1.0, b);
        EXPECT_NEAR(estimate->a, hi, 0.12) << "b=" << b;
        EXPECT_NEAR(estimate->b, lo, 0.12) << "b=" << b;
    }
}

TEST(AmplitudeEstimator, BranchlessAccumulationIsByteIdentical)
{
    // The §6.2 window statistics were rewritten with a branchless
    // above-mean accumulation (the old data-driven branch mispredicted
    // every other sample).  Adding a masked +0.0 to a non-negative
    // partial sum is the IEEE identity, so the estimates must equal the
    // historical branchy transcription below bit for bit.
    const auto reference_estimate =
        [](dsp::Signal_view overlap,
           double noise) -> std::optional<Amplitude_estimate> {
        const std::vector<double> e = dsp::sample_energies(overlap);
        double sum = 0.0;
        for (const double v : e)
            sum += v;
        const double mu_raw = sum / static_cast<double>(e.size());
        double above = 0.0;
        for (const double v : e) {
            if (v > mu_raw)
                above += v;
        }
        const double sigma_raw = 2.0 * above / static_cast<double>(e.size());
        const double mu = mu_raw - noise;
        const double sigma = sigma_raw - noise;
        if (mu <= 0.0)
            return std::nullopt;
        const double product = std::max(std::numbers::pi * (sigma - mu) / 4.0, 0.0);
        double discriminant = mu * mu - 4.0 * product * product;
        if (discriminant < 0.0)
            discriminant = 0.0;
        const double root = std::sqrt(discriminant);
        const double a2 = (mu + root) / 2.0;
        const double b2 = (mu - root) / 2.0;
        if (b2 < 0.0)
            return std::nullopt;
        Amplitude_estimate estimate;
        estimate.a = std::sqrt(a2);
        estimate.b = std::sqrt(b2);
        estimate.mu = mu;
        estimate.sigma = sigma;
        if (estimate.a <= 0.0 || estimate.b <= 0.0)
            return std::nullopt;
        return estimate;
    };

    for (const std::uint64_t seed : {601ull, 602ull, 603ull, 604ull}) {
        const double noise = seed % 2 ? 0.01 : 0.0;
        const dsp::Signal mix = make_mix(1.0, 0.85, 3000, seed, noise);
        const auto actual = estimate_amplitudes(mix, noise);
        const auto expected = reference_estimate(mix, noise);
        ASSERT_EQ(actual.has_value(), expected.has_value()) << "seed " << seed;
        if (actual) {
            // Exact ==: the serial sum chain's value must be unchanged.
            EXPECT_EQ(actual->a, expected->a) << "seed " << seed;
            EXPECT_EQ(actual->b, expected->b) << "seed " << seed;
            EXPECT_EQ(actual->mu, expected->mu) << "seed " << seed;
            EXPECT_EQ(actual->sigma, expected->sigma) << "seed " << seed;
        }
    }
}

} // namespace
} // namespace anc
