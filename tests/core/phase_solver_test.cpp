#include "core/phase_solver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/phase.h"
#include "util/rng.h"

namespace anc {
namespace {

constexpr double pi = std::numbers::pi;

dsp::Sample compose(double a, double theta, double b, double phi)
{
    return std::polar(a, theta) + std::polar(b, phi);
}

/// One of the two solutions must recover (theta, phi) up to 2*pi.
void expect_solution_contains(const Phase_solutions& solutions, double theta, double phi,
                              double tolerance = 1e-9)
{
    const bool first_matches =
        phase_distance(solutions.pair[0].theta, theta) < tolerance
        && phase_distance(solutions.pair[0].phi, phi) < tolerance;
    const bool second_matches =
        phase_distance(solutions.pair[1].theta, theta) < tolerance
        && phase_distance(solutions.pair[1].phi, phi) < tolerance;
    EXPECT_TRUE(first_matches || second_matches)
        << "theta=" << theta << " phi=" << phi
        << " got (" << solutions.pair[0].theta << "," << solutions.pair[0].phi << ") and ("
        << solutions.pair[1].theta << "," << solutions.pair[1].phi << ")";
}

TEST(PhaseSolver, RecoversKnownPhases)
{
    const double a = 1.0;
    const double b = 0.7;
    const double theta = 0.8;
    const double phi = -1.9;
    const auto solutions = solve_phases(compose(a, theta, b, phi), a, b);
    EXPECT_FALSE(solutions.clamped);
    expect_solution_contains(solutions, theta, phi);
}

TEST(PhaseSolver, ExhaustivePhaseSweep)
{
    // Property: for every true (theta, phi) pair, the solver's candidate
    // set contains it.  Sweep the whole torus.
    const double a = 1.0;
    const double b = 0.6;
    for (double theta = -3.0; theta <= 3.0; theta += 0.37) {
        for (double phi = -3.0; phi <= 3.0; phi += 0.41) {
            const auto solutions = solve_phases(compose(a, theta, b, phi), a, b);
            expect_solution_contains(solutions, theta, phi, 1e-7);
        }
    }
}

TEST(PhaseSolver, BothSolutionsReconstructY)
{
    // Property (the geometric content of Lemma 6.1): each candidate pair
    // must itself sum to y.
    Pcg32 rng{501};
    for (int trial = 0; trial < 500; ++trial) {
        const double a = 0.2 + 2.0 * rng.next_double();
        const double b = 0.2 + 2.0 * rng.next_double();
        const double theta = (rng.next_double() - 0.5) * 2.0 * pi;
        const double phi = (rng.next_double() - 0.5) * 2.0 * pi;
        const dsp::Sample y = compose(a, theta, b, phi);
        const auto solutions = solve_phases(y, a, b);
        for (const Phase_pair& pair : solutions.pair) {
            const dsp::Sample rebuilt = compose(a, pair.theta, b, pair.phi);
            EXPECT_NEAR(rebuilt.real(), y.real(), 1e-6);
            EXPECT_NEAR(rebuilt.imag(), y.imag(), 1e-6);
        }
    }
}

TEST(PhaseSolver, SolutionsComeInConjugatePairs)
{
    // The two solutions mirror around arg(y): theta_1 + theta_2 should
    // bracket it symmetrically.
    const double a = 1.0;
    const double b = 0.5;
    const double theta = 0.3;
    const double phi = 1.4;
    const dsp::Sample y = compose(a, theta, b, phi);
    const auto solutions = solve_phases(y, a, b);
    const double mid1 = wrap_phase(solutions.pair[0].theta - std::arg(y));
    const double mid2 = wrap_phase(solutions.pair[1].theta - std::arg(y));
    EXPECT_NEAR(mid1, -mid2, 1e-9);
}

TEST(PhaseSolver, DegenerateAlignedSignals)
{
    // theta == phi: |y| = a + b, D = 1 exactly; the two solutions merge.
    const double a = 1.0;
    const double b = 0.4;
    const double theta = 0.7;
    const auto solutions = solve_phases(compose(a, theta, b, theta), a, b);
    EXPECT_NEAR(solutions.d, 1.0, 1e-9);
    expect_solution_contains(solutions, theta, theta, 1e-6);
}

TEST(PhaseSolver, DegenerateOpposedSignals)
{
    // theta == phi + pi: |y| = a - b, D = -1.
    const double a = 1.0;
    const double b = 0.4;
    const double theta = 0.7;
    const double phi = theta - pi;
    const auto solutions = solve_phases(compose(a, theta, b, phi), a, b);
    EXPECT_NEAR(solutions.d, -1.0, 1e-9);
    expect_solution_contains(solutions, theta, phi, 1e-6);
}

TEST(PhaseSolver, ClampsInconsistentMagnitude)
{
    // |y| larger than a+b is geometrically impossible: the solver must
    // clamp rather than produce NaNs.
    const dsp::Sample y{5.0, 0.0};
    const auto solutions = solve_phases(y, 1.0, 1.0);
    EXPECT_TRUE(solutions.clamped);
    for (const Phase_pair& pair : solutions.pair) {
        EXPECT_TRUE(std::isfinite(pair.theta));
        EXPECT_TRUE(std::isfinite(pair.phi));
    }
}

TEST(PhaseSolver, ClampsTinyMagnitude)
{
    const dsp::Sample y{1e-9, 0.0};
    const auto solutions = solve_phases(y, 1.0, 0.9); // |a-b| = 0.1 > |y|
    EXPECT_TRUE(solutions.clamped);
    for (const Phase_pair& pair : solutions.pair) {
        EXPECT_TRUE(std::isfinite(pair.theta));
        EXPECT_TRUE(std::isfinite(pair.phi));
    }
}

TEST(PhaseSolver, RejectsNonPositiveAmplitudes)
{
    const dsp::Sample y{1.0, 0.0};
    EXPECT_THROW(solve_phases(y, 0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(solve_phases(y, 1.0, -1.0), std::invalid_argument);
}

TEST(PhaseSolver, NoiseRobustness)
{
    // With mild noise the candidate set still contains a pair close to the
    // truth.
    Pcg32 rng{502};
    const double a = 1.0;
    const double b = 0.8;
    int hits = 0;
    const int trials = 300;
    for (int trial = 0; trial < trials; ++trial) {
        const double theta = (rng.next_double() - 0.5) * 2.0 * pi;
        const double phi = (rng.next_double() - 0.5) * 2.0 * pi;
        dsp::Sample y = compose(a, theta, b, phi);
        y += dsp::Sample{0.02 * rng.next_gaussian(), 0.02 * rng.next_gaussian()};
        const auto solutions = solve_phases(y, a, b);
        for (const Phase_pair& pair : solutions.pair) {
            if (phase_distance(pair.theta, theta) < 0.25
                && phase_distance(pair.phi, phi) < 0.25) {
                ++hits;
                break;
            }
        }
    }
    EXPECT_GT(hits, trials * 95 / 100);
}

TEST(PhaseSolver, FastProfileTracksExactWithinKernelBounds)
{
    // The fast profile swaps the four arg() calls for fast_atan2; the
    // solution phases must agree with the exact solver to the kernel's
    // documented bound — far inside the +-pi/2 Eq. 8 decision margins.
    Pcg32 rng{314, 15};
    double max_dev = 0.0;
    for (int trial = 0; trial < 20000; ++trial) {
        const double a = 0.5 + rng.next_double();
        const double b = 0.5 + rng.next_double();
        const dsp::Sample y{(rng.next_double() - 0.5) * 2.0 * (a + b),
                            (rng.next_double() - 0.5) * 2.0 * (a + b)};
        if (std::abs(y) < 1e-6)
            continue;
        const Phase_solutions exact = solve_phases(y, a, b);
        const Phase_solutions fast =
            solve_phases(y, a, b, dsp::Math_profile::fast);
        EXPECT_EQ(exact.clamped, fast.clamped);
        EXPECT_EQ(exact.d, fast.d); // d and the factors are profile-free
        for (std::size_t p = 0; p < exact.pair.size(); ++p) {
            max_dev = std::max(max_dev,
                               phase_distance(exact.pair[p].theta, fast.pair[p].theta));
            max_dev = std::max(max_dev,
                               phase_distance(exact.pair[p].phi, fast.pair[p].phi));
        }
    }
    EXPECT_LT(max_dev, 5e-11);
}

TEST(PhaseSolver, ExactOverloadIsTheDefault)
{
    const dsp::Sample y{0.8, -0.6};
    const Phase_solutions implicit = solve_phases(y, 1.0, 0.7);
    const Phase_solutions explicit_exact =
        solve_phases(y, 1.0, 0.7, dsp::Math_profile::exact);
    EXPECT_EQ(implicit.pair[0].theta, explicit_exact.pair[0].theta);
    EXPECT_EQ(implicit.pair[0].phi, explicit_exact.pair[0].phi);
    EXPECT_EQ(implicit.pair[1].theta, explicit_exact.pair[1].theta);
    EXPECT_EQ(implicit.pair[1].phi, explicit_exact.pair[1].phi);
}

} // namespace
} // namespace anc
