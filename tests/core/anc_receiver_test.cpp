#include "core/anc_receiver.h"

#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "channel/link.h"
#include "core/relay.h"
#include "dsp/ops.h"
#include "util/bits.h"
#include "util/db.h"
#include "util/rng.h"

namespace anc {
namespace {

constexpr double snr_db = 25.0; // the paper's WLAN operating point
const double noise_power = chan::noise_power_for_snr_db(snr_db);

struct Test_node {
    phy::Modem modem;
    Sent_packet_buffer buffer;

    dsp::Signal send(const phy::Frame_header& header, const Bits& payload, double phase)
    {
        const Bits frame = modem.frame_bits(header, payload);
        Stored_frame stored;
        stored.header = header;
        stored.frame_bits = frame;
        stored.payload = payload;
        buffer.store(stored);
        return modem.modulate(frame, phase);
    }
};

phy::Frame_header make_header(std::uint8_t src, std::uint8_t dst, std::uint16_t seq,
                              std::uint16_t payload_bits)
{
    phy::Frame_header header;
    header.src = src;
    header.dst = dst;
    header.seq = seq;
    header.payload_bits = payload_bits;
    return header;
}

/// Build the Alice-Bob collision as the *relay* hears it, then re-amplify
/// and deliver it to a destination, mimicking the two ANC rounds.
struct Alice_bob_exchange {
    Test_node alice;
    Test_node bob;
    Bits alice_payload;
    Bits bob_payload;
    dsp::Signal at_alice; // what Alice hears after the relay broadcast
    dsp::Signal at_bob;
};

Alice_bob_exchange run_exchange(std::uint64_t seed, std::size_t payload_bits = 512,
                                std::size_t alice_start = 0, std::size_t bob_start = 160,
                                double bob_amplitude = 1.0)
{
    Pcg32 rng{seed};
    Alice_bob_exchange x;
    x.alice_payload = random_bits(payload_bits, rng);
    x.bob_payload = random_bits(payload_bits, rng);

    phy::Modem_config bob_modem;
    bob_modem.amplitude = bob_amplitude;
    x.bob.modem = phy::Modem{bob_modem};

    const auto h_a = make_header(1, 2, 100, static_cast<std::uint16_t>(payload_bits));
    const auto h_b = make_header(2, 1, 200, static_cast<std::uint16_t>(payload_bits));
    const dsp::Signal sig_a = x.alice.send(h_a, x.alice_payload, rng.next_double() * 6.28);
    const dsp::Signal sig_b = x.bob.send(h_b, x.bob_payload, rng.next_double() * 6.28);

    // Round 1: both transmit; the relay hears the sum plus its own noise.
    // The two uplinks carry a small relative carrier-frequency offset, as
    // any two physical radios would.
    dsp::Signal at_relay;
    dsp::accumulate(at_relay, chan::Link_channel{{0.9, 0.4, 0, 0.002}}.apply(sig_a), alice_start);
    dsp::accumulate(at_relay, chan::Link_channel{{0.85, -1.2, 0, -0.002}}.apply(sig_b), bob_start);
    chan::Awgn relay_noise{noise_power, rng.fork(1)};
    relay_noise.add_in_place(at_relay);

    // Round 2: amplify-and-forward to both ends.
    const auto broadcast = amplify_and_forward(at_relay, noise_power, 1.0);
    if (!broadcast)
        throw std::runtime_error{"relay detected no packet"};

    x.at_alice = chan::Link_channel{{0.9, 1.9, 0, 0.0}}.apply(*broadcast);
    chan::Awgn alice_noise{noise_power, rng.fork(2)};
    alice_noise.add_in_place(x.at_alice);

    x.at_bob = chan::Link_channel{{0.85, -0.3, 0, 0.0}}.apply(*broadcast);
    chan::Awgn bob_noise{noise_power, rng.fork(3)};
    bob_noise.add_in_place(x.at_bob);
    return x;
}

Anc_receiver make_receiver()
{
    return Anc_receiver{Anc_receiver_config{}, noise_power};
}

TEST(AncReceiver, SilenceIsNoPacket)
{
    Pcg32 rng{901};
    dsp::Signal silence(3000, dsp::Sample{0.0, 0.0});
    chan::Awgn noise{noise_power, rng};
    noise.add_in_place(silence);
    const Anc_receiver receiver = make_receiver();
    const Sent_packet_buffer empty;
    EXPECT_EQ(receiver.receive(silence, empty).status, Receive_status::no_packet);
}

TEST(AncReceiver, CleanPacketDecodesStandard)
{
    Pcg32 rng{902};
    Test_node sender;
    const Bits payload = random_bits(400, rng);
    dsp::Signal signal = sender.send(make_header(1, 2, 1, 400), payload, 0.5);
    signal = dsp::delayed(signal, 120);
    chan::Awgn noise{noise_power, rng.fork(1)};
    noise.add_in_place(signal);

    const Anc_receiver receiver = make_receiver();
    const Sent_packet_buffer empty;
    const Receive_outcome outcome = receiver.receive(signal, empty);
    ASSERT_EQ(outcome.status, Receive_status::clean);
    ASSERT_TRUE(outcome.frame.has_value());
    EXPECT_EQ(outcome.frame->payload, payload);
}

TEST(AncReceiver, AliceDecodesForward)
{
    // Alice's packet starts first: she decodes Bob's packet forward.
    const Alice_bob_exchange x = run_exchange(903);
    const Anc_receiver receiver = make_receiver();
    const Receive_outcome outcome = receiver.receive(x.at_alice, x.alice.buffer);
    ASSERT_EQ(outcome.status, Receive_status::decoded_interference);
    ASSERT_TRUE(outcome.frame.has_value());
    EXPECT_FALSE(outcome.diag.backward);
    EXPECT_EQ(outcome.frame->header.src, 2);
    const double ber = bit_error_rate(outcome.frame->payload, x.bob_payload);
    EXPECT_LT(ber, 0.05) << "Alice->Bob payload BER";
}

TEST(AncReceiver, BobDecodesBackward)
{
    // Bob's packet starts second: he must decode backward (§7.4).
    const Alice_bob_exchange x = run_exchange(904);
    const Anc_receiver receiver = make_receiver();
    const Receive_outcome outcome = receiver.receive(x.at_bob, x.bob.buffer);
    ASSERT_EQ(outcome.status, Receive_status::decoded_interference);
    ASSERT_TRUE(outcome.frame.has_value());
    EXPECT_TRUE(outcome.diag.backward);
    EXPECT_EQ(outcome.frame->header.src, 1);
    const double ber = bit_error_rate(outcome.frame->payload, x.alice_payload);
    EXPECT_LT(ber, 0.05) << "Bob->Alice payload BER";
}

TEST(AncReceiver, BothHeadersVisibleInDiagnostics)
{
    const Alice_bob_exchange x = run_exchange(905);
    const Anc_receiver receiver = make_receiver();
    const Receive_outcome outcome = receiver.receive(x.at_alice, x.alice.buffer);
    ASSERT_TRUE(outcome.diag.first_header.has_value());
    ASSERT_TRUE(outcome.diag.second_header.has_value());
    EXPECT_EQ(outcome.diag.first_header->src, 1); // Alice started first
    EXPECT_EQ(outcome.diag.second_header->src, 2);
}

TEST(AncReceiver, UnknownCollisionIsForwardCandidate)
{
    // A third party (the relay) hears the same collision but knows
    // neither packet: it must classify it as forwardable, not decode it.
    const Alice_bob_exchange x = run_exchange(906);
    const Anc_receiver receiver = make_receiver();
    const Sent_packet_buffer empty;
    const Receive_outcome outcome = receiver.receive(x.at_alice, empty);
    EXPECT_EQ(outcome.status, Receive_status::forward_candidate);
}

TEST(AncReceiver, AmplitudeEstimatesAreSane)
{
    const Alice_bob_exchange x = run_exchange(907);
    const Anc_receiver receiver = make_receiver();
    const Receive_outcome outcome = receiver.receive(x.at_alice, x.alice.buffer);
    ASSERT_EQ(outcome.status, Receive_status::decoded_interference);
    EXPECT_GT(outcome.diag.est_known_amp, 0.1);
    EXPECT_GT(outcome.diag.est_unknown_amp, 0.1);
    // Links were near-symmetric, so the two estimates should be within ~2x.
    EXPECT_LT(outcome.diag.est_known_amp / outcome.diag.est_unknown_amp, 2.2);
    EXPECT_GT(outcome.diag.est_known_amp / outcome.diag.est_unknown_amp, 0.45);
}

TEST(AncReceiver, WorksAtNegativeSir)
{
    // Bob transmits at twice the amplitude (SIR at Alice ~ +6 dB for
    // decoding Bob; at Bob, Alice's signal is -6 dB relative to his own —
    // the regime prior art cannot handle, §11.7).
    const Alice_bob_exchange x = run_exchange(908, 512, 0, 96, 2.0);
    const Anc_receiver receiver = make_receiver();
    const Receive_outcome at_bob = receiver.receive(x.at_bob, x.bob.buffer);
    ASSERT_EQ(at_bob.status, Receive_status::decoded_interference);
    const double ber = bit_error_rate(at_bob.frame->payload, x.alice_payload);
    EXPECT_LT(ber, 0.06);
}

TEST(AncReceiver, LargerJitterStillDecodes)
{
    const Alice_bob_exchange x = run_exchange(909, 512, 0, 400);
    const Anc_receiver receiver = make_receiver();
    const Receive_outcome outcome = receiver.receive(x.at_alice, x.alice.buffer);
    ASSERT_EQ(outcome.status, Receive_status::decoded_interference);
    EXPECT_LT(bit_error_rate(outcome.frame->payload, x.bob_payload), 0.05);
}

TEST(AncReceiver, MuSigmaOnlyAblationStillWorks)
{
    Anc_receiver_config config;
    config.mu_sigma_only = true;
    const Anc_receiver receiver{config, noise_power};
    const Alice_bob_exchange x = run_exchange(910);
    const Receive_outcome outcome = receiver.receive(x.at_alice, x.alice.buffer);
    ASSERT_EQ(outcome.status, Receive_status::decoded_interference);
    EXPECT_LT(bit_error_rate(outcome.frame->payload, x.bob_payload), 0.10);
}

TEST(AncReceiver, DeterministicAcrossRuns)
{
    const Alice_bob_exchange x1 = run_exchange(911);
    const Alice_bob_exchange x2 = run_exchange(911);
    const Anc_receiver receiver = make_receiver();
    const Receive_outcome o1 = receiver.receive(x1.at_alice, x1.alice.buffer);
    const Receive_outcome o2 = receiver.receive(x2.at_alice, x2.alice.buffer);
    ASSERT_EQ(o1.status, o2.status);
    ASSERT_TRUE(o1.frame.has_value());
    EXPECT_EQ(o1.frame->payload, o2.frame->payload);
}

} // namespace
} // namespace anc
