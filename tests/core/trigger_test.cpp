#include "core/trigger.h"

#include <gtest/gtest.h>

namespace anc {
namespace {

TEST(Trigger, SequenceIsStable)
{
    EXPECT_EQ(trigger_sequence().size(), trigger_length);
    EXPECT_EQ(trigger_sequence(), trigger_sequence());
}

TEST(Trigger, EndsWithTriggerExact)
{
    Bits bits(100, 0);
    const Bits& trigger = trigger_sequence();
    bits.insert(bits.end(), trigger.begin(), trigger.end());
    EXPECT_TRUE(ends_with_trigger(bits));
}

TEST(Trigger, EndsWithTriggerTolerance)
{
    Bits bits(50, 1);
    Bits trigger = trigger_sequence();
    trigger[5] ^= 1u;
    bits.insert(bits.end(), trigger.begin(), trigger.end());
    EXPECT_TRUE(ends_with_trigger(bits, 2));
    trigger[9] ^= 1u;
    trigger[11] ^= 1u;
    Bits worse(50, 1);
    worse.insert(worse.end(), trigger.begin(), trigger.end());
    EXPECT_FALSE(ends_with_trigger(worse, 2));
}

TEST(Trigger, ShortSequenceNotTrigger)
{
    EXPECT_FALSE(ends_with_trigger(Bits{1, 0, 1}));
}

TEST(Trigger, DelayInConfiguredRange)
{
    Trigger_config config;
    config.slot_count = 32;
    config.slot_symbols = 8;
    Pcg32 rng{801};
    for (int i = 0; i < 1000; ++i) {
        const std::size_t delay = draw_start_delay(config, rng);
        EXPECT_GE(delay, 8u);
        EXPECT_LE(delay, 256u);
        EXPECT_EQ(delay % 8, 0u);
    }
}

TEST(Trigger, DefaultSlotSizing)
{
    // Slot must cover pilot + header so distinct slots guarantee a
    // decodable clean region.
    const Trigger_config config;
    EXPECT_EQ(config.slot_count, 8u);
    EXPECT_GE(config.slot_symbols, 128u + 8u);
}

TEST(Trigger, DistinctDelaysNeverEqual)
{
    Trigger_config config;
    Pcg32 rng{804};
    for (int i = 0; i < 2000; ++i) {
        const auto [da, db] = draw_distinct_delays(config, rng);
        EXPECT_NE(da, db);
        EXPECT_GE(da, config.slot_symbols);
        EXPECT_LE(db, config.slot_count * config.slot_symbols);
        // Distinct slots guarantee a clean pilot+header region.
        const std::size_t gap = da > db ? da - db : db - da;
        EXPECT_GE(gap, config.slot_symbols);
    }
}

TEST(Trigger, DelayCoversAllSlots)
{
    Trigger_config config;
    config.slot_count = 4;
    config.slot_symbols = 1;
    Pcg32 rng{802};
    std::vector<int> seen(5, 0);
    for (int i = 0; i < 4000; ++i)
        ++seen[draw_start_delay(config, rng)];
    for (int slot = 1; slot <= 4; ++slot)
        EXPECT_GT(seen[slot], 800);
}

TEST(Trigger, OverlapFractionFullAndNone)
{
    EXPECT_DOUBLE_EQ(overlap_fraction(0, 100, 0, 100), 1.0);
    EXPECT_DOUBLE_EQ(overlap_fraction(0, 100, 100, 100), 0.0);
    EXPECT_DOUBLE_EQ(overlap_fraction(0, 100, 250, 100), 0.0);
}

TEST(Trigger, OverlapFractionPartial)
{
    EXPECT_DOUBLE_EQ(overlap_fraction(0, 100, 20, 100), 0.8);
    EXPECT_DOUBLE_EQ(overlap_fraction(20, 100, 0, 100), 0.8);
}

TEST(Trigger, OverlapFractionUsesShorterPacket)
{
    // A 50-bit packet fully inside a 200-bit packet overlaps 100%.
    EXPECT_DOUBLE_EQ(overlap_fraction(0, 200, 50, 50), 1.0);
}

TEST(Trigger, OverlapZeroLength)
{
    EXPECT_DOUBLE_EQ(overlap_fraction(0, 0, 0, 100), 0.0);
}

TEST(Trigger, MeanOverlapNearPaperOperatingPoint)
{
    // With the default 8 distinct slots of 140 symbols against ~2300-bit
    // frames (2048-bit payloads), the expected overlap lands near the
    // paper's reported 80% (§11.4).
    Trigger_config config;
    Pcg32 rng{803};
    const std::size_t frame = 2304;
    double total = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        const auto [da, db] = draw_distinct_delays(config, rng);
        total += overlap_fraction(da, frame, db, frame);
    }
    const double mean = total / trials;
    EXPECT_GT(mean, 0.76);
    EXPECT_LT(mean, 0.86);
}

} // namespace
} // namespace anc
