// The generic-PSK claim of §4: the interference decoding machinery works
// for any phase-shift keying, not just MSK.  These tests collide DQPSK
// and MSK signals in every combination and decode the unknown one via
// Interference_decoder::decode_symbols.

#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "channel/link.h"
#include "core/interference_decoder.h"
#include "dsp/dpsk.h"
#include "dsp/msk.h"
#include "dsp/ops.h"
#include "util/bits.h"
#include "util/rng.h"

namespace anc {
namespace {

dsp::Signal add_with_drift(dsp::Signal known, const dsp::Signal& unknown,
                           std::size_t offset, double noise_power, Pcg32& rng)
{
    chan::Link_params drift;
    drift.phase_drift = 0.004;
    dsp::accumulate(known, chan::Link_channel{drift}.apply(unknown), offset);
    if (noise_power > 0.0) {
        chan::Awgn noise{noise_power, rng.fork(5)};
        noise.add_in_place(known);
    }
    return known;
}

TEST(DecodeSymbols, DqpskUnknownMskKnown)
{
    // An MSK packet (known) collides with a DQPSK packet (unknown).
    Pcg32 rng{171};
    const Bits known_bits = random_bits(800, rng);
    const Bits unknown_bits = random_bits(800, rng); // 400 DQPSK symbols
    const dsp::Msk_modulator msk{1.0, 0.3};
    const dsp::Dqpsk_modulator dqpsk{0.9, 1.2};

    const dsp::Signal mix = add_with_drift(
        msk.modulate(known_bits), dqpsk.modulate(unknown_bits), 0,
        chan::noise_power_for_snr_db(25.0), rng);

    const auto known_diffs = dsp::phase_differences_for_bits(known_bits);
    const Interference_decoder decoder;
    const auto result = decoder.decode_symbols(mix, known_diffs, 1.0, 0.9,
                                               dsp::dqpsk_steps);

    Bits decoded;
    for (const std::size_t s : result.symbols) {
        const auto [b0, b1] = dsp::dqpsk_bits_for_symbol(s);
        decoded.push_back(b0);
        decoded.push_back(b1);
    }
    decoded.resize(unknown_bits.size());
    EXPECT_LT(bit_error_rate(decoded, unknown_bits), 0.05);
}

TEST(DecodeSymbols, MskUnknownDqpskKnown)
{
    // The reverse: cancel a known DQPSK packet, decode the MSK one.
    Pcg32 rng{172};
    const Bits known_bits = random_bits(800, rng);   // 400 DQPSK symbols
    const Bits unknown_bits = random_bits(400, rng); // 400 MSK bits
    const dsp::Dqpsk_modulator dqpsk{1.0, 0.5};
    const dsp::Msk_modulator msk{0.85, 2.0};

    const dsp::Signal mix = add_with_drift(
        dqpsk.modulate(known_bits), msk.modulate(unknown_bits), 0,
        chan::noise_power_for_snr_db(25.0), rng);

    const auto known_diffs = dsp::dqpsk_phase_steps_for_bits(known_bits);
    const Interference_decoder decoder;
    constexpr double msk_alphabet[] = {-1.5707963267948966, 1.5707963267948966};
    const auto result =
        decoder.decode_symbols(mix, known_diffs, 1.0, 0.85, msk_alphabet);

    Bits decoded;
    for (const std::size_t s : result.symbols)
        decoded.push_back(static_cast<std::uint8_t>(s)); // index 1 = +pi/2 = bit 1
    decoded.resize(unknown_bits.size());
    EXPECT_LT(bit_error_rate(decoded, unknown_bits), 0.05);
}

TEST(DecodeSymbols, DqpskBothSides)
{
    Pcg32 rng{173};
    const Bits known_bits = random_bits(1000, rng);
    const Bits unknown_bits = random_bits(1000, rng);
    const dsp::Dqpsk_modulator mod_known{1.0, 0.1};
    const dsp::Dqpsk_modulator mod_unknown{0.9, 1.9};

    const dsp::Signal mix = add_with_drift(
        mod_known.modulate(known_bits), mod_unknown.modulate(unknown_bits), 0,
        chan::noise_power_for_snr_db(28.0), rng);

    const auto known_diffs = dsp::dqpsk_phase_steps_for_bits(known_bits);
    const Interference_decoder decoder;
    const auto result = decoder.decode_symbols(mix, known_diffs, 1.0, 0.9,
                                               dsp::dqpsk_steps);
    Bits decoded;
    for (const std::size_t s : result.symbols) {
        const auto [b0, b1] = dsp::dqpsk_bits_for_symbol(s);
        decoded.push_back(b0);
        decoded.push_back(b1);
    }
    decoded.resize(unknown_bits.size());
    // pi/4 margins are tighter than MSK's pi/2; allow a higher BER.
    EXPECT_LT(bit_error_rate(decoded, unknown_bits), 0.10);
}

TEST(DecodeSymbols, MskAlphabetMatchesLegacyDecode)
{
    // decode() must be exactly decode_symbols() with the MSK alphabet.
    Pcg32 rng{174};
    const Bits known_bits = random_bits(400, rng);
    const Bits unknown_bits = random_bits(400, rng);
    const dsp::Msk_modulator mod_known{1.0, 0.0};
    const dsp::Msk_modulator mod_unknown{0.8, 0.7};
    const dsp::Signal mix = add_with_drift(mod_known.modulate(known_bits),
                                           mod_unknown.modulate(unknown_bits), 0,
                                           chan::noise_power_for_snr_db(25.0), rng);
    const auto known_diffs = dsp::phase_differences_for_bits(known_bits);
    const Interference_decoder decoder;
    const auto legacy = decoder.decode(mix, known_diffs, 1.0, 0.8);
    constexpr double msk_alphabet[] = {-1.5707963267948966, 1.5707963267948966};
    const auto generic =
        decoder.decode_symbols(mix, known_diffs, 1.0, 0.8, msk_alphabet);
    ASSERT_EQ(legacy.bits.size(), generic.symbols.size());
    for (std::size_t i = 0; i < legacy.bits.size(); ++i)
        EXPECT_EQ(legacy.bits[i], static_cast<std::uint8_t>(generic.symbols[i])) << i;
}

TEST(DecodeSymbols, EmptyAlphabetRejected)
{
    const Interference_decoder decoder;
    const dsp::Signal two(2, dsp::Sample{1.0, 0.0});
    const std::vector<double> no_diffs;
    EXPECT_THROW(decoder.decode_symbols(two, no_diffs, 1.0, 1.0, {}),
                 std::invalid_argument);
}

TEST(DecodeSymbols, PartialOverlapTailUsesAlphabet)
{
    // Past the known signal's end the decoder falls back to plain
    // differential demodulation; symbol snapping must still apply.
    Pcg32 rng{175};
    const Bits known_bits = random_bits(300, rng);
    const Bits unknown_bits = random_bits(600, rng);
    const dsp::Msk_modulator msk{1.0, 0.3};
    const dsp::Dqpsk_modulator dqpsk{0.9, 1.0};
    const dsp::Signal mix = add_with_drift(msk.modulate(known_bits),
                                           dqpsk.modulate(unknown_bits), 100,
                                           chan::noise_power_for_snr_db(25.0), rng);
    const auto known_diffs = dsp::phase_differences_for_bits(known_bits);
    const Interference_decoder decoder;
    const auto result = decoder.decode_symbols(mix, known_diffs, 1.0, 0.9,
                                               dsp::dqpsk_steps);
    // Transitions 301.. are single-signal DQPSK: symbols beyond the known
    // extent must decode the unknown's tail correctly.
    std::size_t errors = 0;
    std::size_t total = 0;
    for (std::size_t k = 0; k < unknown_bits.size() / 2; ++k) {
        const std::size_t transition = 100 + k;
        if (transition < known_diffs.size() || transition >= result.symbols.size())
            continue;
        const auto [b0, b1] = dsp::dqpsk_bits_for_symbol(result.symbols[transition]);
        errors += (b0 != unknown_bits[2 * k]) + (b1 != unknown_bits[2 * k + 1]);
        total += 2;
    }
    ASSERT_GT(total, 100u);
    EXPECT_LT(static_cast<double>(errors) / static_cast<double>(total), 0.02);
}

} // namespace
} // namespace anc
