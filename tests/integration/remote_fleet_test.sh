#!/bin/sh
# Remote-fleet chaos test (ENGINE.md "Remote workers"): run a sweep as a
# streaming fleet — workers journal into a "remote" directory and stream
# anc.jstream.v1 lines to the coordinator through a fault-injecting
# proxy — while the harness SIGKILLs random workers, SIGKILLs and
# restarts the proxy (severed links), and SIGKILLs and restarts the
# coordinator itself (anc.fleet.v1 re-adoption).  The merged artifacts
# must stay byte-identical to an uninterrupted single-process anc_sweep
# run at both the 1- and 8-worker configurations.
#
# Fault rates are the survivable ones: connections live long enough
# (--kill-after in bytes) for frames to land, so the retry/replay
# machinery converges instead of burning the attempt budget.
#
# usage: remote_fleet_test.sh /path/to/anc_coordinator /path/to/anc_sweep \
#            /path/to/jstream_proxy
set -eu

USAGE="usage: remote_fleet_test.sh COORD SWEEP PROXY"
COORD=${1:?$USAGE}
SWEEP=${2:?$USAGE}
PROXY=${3:?$USAGE}
WORKDIR=$(mktemp -d "${TMPDIR:-/tmp}/anc_remote_fleet.XXXXXX")
COORD_PID=
PROXY_PID=
cleanup() {
    [ -n "$COORD_PID" ] && kill -KILL "$COORD_PID" 2>/dev/null
    [ -n "$PROXY_PID" ] && kill -KILL "$PROXY_PID" 2>/dev/null
    # Reap orphaned workers: their argv carries the remote journal dir.
    pkill -KILL -f "$WORKDIR/" 2>/dev/null || true
    wait 2>/dev/null
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM
cd "$WORKDIR"

# Sized so each task costs a noticeable fraction of a second: the fleet
# legs must still be RUNNING when the harness starts killing things, or
# the chaos is vacuous.
GRID="--scenario alice_bob --snr 10:38:4 --repetitions 4 --exchanges 100 \
      --payload-bits 2048 --seed 777"

echo "== uninterrupted single-process baseline"
# shellcheck disable=SC2086   # GRID is a flag list
"$SWEEP" $GRID --quiet --threads 2 --json baseline.json \
    --csv baseline_agg.csv --tasks-csv baseline_tasks.csv

# Ports: derived from the PID so parallel ctest runs do not collide.
PORT_BASE=$(( 21000 + ($$ % 20000) ))

start_proxy() {
    # $1 = proxy listen port, $2 = coordinator listen port
    "$PROXY" --listen "$1" --connect "127.0.0.1:$2" --seed 42 \
        --kill-after 8000:30000 --flip-prob 0.05 --dup-prob 0.2 \
        > "proxy_$1.log" 2>&1 &
    PROXY_PID=$!
    for _ in $(seq 1 50); do
        grep -q "listening" "proxy_$1.log" 2>/dev/null && return 0
        sleep 0.1
    done
    echo "FAIL: proxy never came up on port $1" >&2
    exit 1
}

start_coord() {
    # $1 = workers, $2 = shards, $3 = coord port, $4 = proxy port,
    # $5 = work dir, $6 = log file.  Workers stream through the proxy.
    TEMPLATE="exec {worker} {grid} --quiet --threads {threads} \
--shard {shard}/{shards} {journal_flag} {journal} --journal-stream {stream}"
    # shellcheck disable=SC2086
    "$COORD" --worker "$SWEEP" --launch-template "$TEMPLATE" \
        --workers "$1" --shards "$2" --work-dir "$5" \
        --listen "$3" --worker-stream "127.0.0.1:$4" \
        --worker-journal-dir "$5/remote" \
        --shard-retries 12 --heartbeat-ms 10000 --startup-timeout-ms 8000 \
        --relaunch-initial-ms 50 --relaunch-max-ms 500 --poll-ms 20 \
        $GRID --quiet \
        --json "$6.json" --csv "$6_agg.csv" --tasks-csv "$6_tasks.csv" \
        --metrics-json "$6_metrics.json" 2> "$6.log" &
    COORD_PID=$!
}

kill_one_worker() {
    # Workers (not the coordinator) carry the remote journal dir in
    # their argv via the launch template's {journal}.
    VICTIM=$(pgrep -f "$1/remote/shard" | head -n 1)
    if [ -n "$VICTIM" ] && kill -KILL "$VICTIM" 2>/dev/null; then
        echo "   SIGKILLed worker pid $VICTIM"
    fi
}

# chaos_run LEG WORKERS SHARDS: full fault menu — worker SIGKILLs, one
# proxy SIGKILL+restart (severed streams), one coordinator
# SIGKILL+restart (fleet re-adoption) — then byte-compare everything.
chaos_run() {
    LEG=$1; WORKERS=$2; SHARDS=$3
    CDIR="$WORKDIR/wd_$LEG"
    COORD_PORT=$(( PORT_BASE + LEG * 2 ))
    PROXY_PORT=$(( PORT_BASE + LEG * 2 + 1 ))
    echo "== chaos leg $LEG: $WORKERS workers, $SHARDS shards" \
         "(coord :$COORD_PORT, proxy :$PROXY_PORT)"

    start_proxy "$PROXY_PORT" "$COORD_PORT"
    start_coord "$WORKERS" "$SHARDS" "$COORD_PORT" "$PROXY_PORT" \
        "$CDIR" "out_$LEG"

    sleep 0.7
    kill_one_worker "$CDIR"

    # The coordinator dies mid-run; its workers (own process groups)
    # survive and keep streaming into a dead port until the restarted
    # coordinator re-adopts them via fleet.anf.
    sleep 0.7
    if kill -0 "$COORD_PID" 2>/dev/null; then
        kill -KILL "$COORD_PID" 2>/dev/null || true
        wait "$COORD_PID" 2>/dev/null || true
        echo "   SIGKILLed coordinator; restarting over the same work dir"
    else
        echo "   coordinator already finished; restart still must be a no-op"
    fi
    start_coord "$WORKERS" "$SHARDS" "$COORD_PORT" "$PROXY_PORT" \
        "$CDIR" "out_$LEG"

    # Sever every in-flight stream: kill the proxy, bring it back on the
    # same port.  Senders must reconnect (backoff) and replay from the
    # coordinator's acknowledged watermark.
    sleep 0.7
    kill -KILL "$PROXY_PID" 2>/dev/null || true
    wait "$PROXY_PID" 2>/dev/null || true
    PROXY_PID=
    sleep 0.5
    start_proxy "$PROXY_PORT" "$COORD_PORT"

    kill_one_worker "$CDIR"

    STATUS=0
    wait "$COORD_PID" || STATUS=$?
    COORD_PID=
    if [ "$STATUS" != 0 ]; then
        echo "FAIL: coordinator exited $STATUS" >&2
        cat "out_$LEG.log" >&2
        exit 1
    fi
    kill -KILL "$PROXY_PID" 2>/dev/null || true
    wait "$PROXY_PID" 2>/dev/null || true
    PROXY_PID=

    cmp baseline.json "out_$LEG.json"
    cmp baseline_agg.csv "out_${LEG}_agg.csv"
    cmp baseline_tasks.csv "out_${LEG}_tasks.csv"
    grep -q '"schema":"anc.metrics.v1"' "out_${LEG}_metrics.json"
    grep -q '"transport":' "out_${LEG}_metrics.json"
    grep -q '"adoptions":' "out_${LEG}_metrics.json"
    # The fleet journal must show both coordinator generations.
    [ -f "$CDIR/fleet.anf" ]
    echo "   byte-identical (leg $LEG)"
}

chaos_run 1 1 2
chaos_run 2 8 8

echo "PASS: streamed fleet byte-identical under worker kills, severed" \
     "links, and a coordinator restart at 1 and 8 workers"
