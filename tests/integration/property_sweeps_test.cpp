// Parameterized property sweeps (TEST_P): the system must keep its
// invariants across seeds, SNRs, payload sizes, and SIRs — not just at
// the default operating point.

#include <gtest/gtest.h>

#include "sim/alice_bob.h"
#include "sim/chain.h"
#include "util/db.h"

namespace anc::sim {
namespace {

// ---- Across seeds: determinism-independent invariants ----------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, AncAliceBobInvariants)
{
    Alice_bob_config config;
    config.payload_bits = 1024;
    config.exchanges = 5;
    config.seed = GetParam();
    const Alice_bob_result result = run_alice_bob_anc(config);

    // Never deliver more than attempted; airtime is positive; BER sane.
    EXPECT_LE(result.metrics.packets_delivered, result.metrics.packets_attempted);
    EXPECT_GT(result.metrics.airtime_symbols, 0.0);
    EXPECT_GE(result.metrics.mean_ber(), 0.0);
    EXPECT_LT(result.metrics.mean_ber(), 0.2);
    // Majority of packets decode at 25 dB.
    EXPECT_GE(result.metrics.delivery_rate(), 0.7);
    // Overlap forced into (0, 1): never complete, never empty.
    if (!result.metrics.overlaps.empty()) {
        EXPECT_GT(result.metrics.overlaps.min(), 0.0);
        EXPECT_LT(result.metrics.overlaps.max(), 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u));

// ---- Across SNR: graceful degradation ---------------------------------

class SnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(SnrSweep, AncDegradesGracefully)
{
    Alice_bob_config config;
    config.payload_bits = 1024;
    config.exchanges = 5;
    config.seed = 7;
    config.snr_db = GetParam();
    const Alice_bob_result result = run_alice_bob_anc(config);
    EXPECT_LE(result.metrics.packets_delivered, result.metrics.packets_attempted);
    if (config.snr_db >= 20.0) {
        EXPECT_GE(result.metrics.delivery_rate(), 0.7) << "snr " << config.snr_db;
        EXPECT_LT(result.metrics.mean_ber(), 0.12) << "snr " << config.snr_db;
    }
}

INSTANTIATE_TEST_SUITE_P(OperatingRange, SnrSweep,
                         ::testing::Values(20.0, 25.0, 30.0, 35.0, 40.0));

TEST_P(SnrSweep, TraditionalRoutingRobust)
{
    Alice_bob_config config;
    config.payload_bits = 512;
    config.exchanges = 4;
    config.seed = 8;
    config.snr_db = GetParam();
    const Alice_bob_result result = run_alice_bob_traditional(config);
    EXPECT_EQ(result.metrics.packets_delivered, result.metrics.packets_attempted);
    EXPECT_LT(result.metrics.mean_ber(), 0.01);
}

// ---- Across payload sizes ---------------------------------------------

class PayloadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PayloadSweep, AncWorksAcrossFrameSizes)
{
    Alice_bob_config config;
    config.payload_bits = GetParam();
    config.exchanges = 4;
    config.seed = 9;
    const Alice_bob_result result = run_alice_bob_anc(config);
    EXPECT_GE(result.metrics.delivery_rate(), 0.6) << "payload " << GetParam();
    EXPECT_LT(result.metrics.mean_ber(), 0.12) << "payload " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sizes, PayloadSweep,
                         ::testing::Values(1024u, 1536u, 2048u, 3072u, 4096u));

// ---- Across SIR (Fig. 13's axis) ---------------------------------------

class SirSweep : public ::testing::TestWithParam<double> {};

TEST_P(SirSweep, DecodableAcrossRelativeStrengths)
{
    // SIR (dB) for decoding *Bob* at Alice: positive means Bob's signal
    // is stronger at the receiver.
    const double sir_db = GetParam();
    Alice_bob_config config;
    config.payload_bits = 1024;
    config.exchanges = 5;
    config.seed = 10;
    config.bob_amplitude = amplitude_from_db(sir_db);
    const Alice_bob_result result = run_alice_bob_anc(config);
    ASSERT_FALSE(result.ber_at_alice.empty()) << "sir " << sir_db;
    // The paper's claim (§11.7): below 5% BER even at -3 dB SIR.
    EXPECT_LT(result.ber_at_alice.mean(), 0.08) << "sir " << sir_db;
}

INSTANTIATE_TEST_SUITE_P(Fig13Range, SirSweep,
                         ::testing::Values(-3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0, 4.0));

// ---- Chain invariants across seeds -------------------------------------

class ChainSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChainSeedSweep, PipelineInvariants)
{
    Chain_config config;
    config.payload_bits = 1024;
    config.packets = 6;
    config.seed = GetParam();
    const Chain_result result = run_chain_anc(config);
    EXPECT_LE(result.metrics.packets_delivered, result.metrics.packets_attempted);
    EXPECT_GE(result.metrics.delivery_rate(), 0.6);
    EXPECT_LT(result.metrics.mean_ber(), 0.08);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainSeedSweep, ::testing::Values(1u, 2u, 3u, 4u, 5u));

} // namespace
} // namespace anc::sim
