// Parameterized sweeps over the beyond-paper extensions: the generic-PSK
// decoding path (§4's claim) and the oversampling/clock-recovery chain
// (§2's requirement) must hold across their whole parameter ranges, not
// just at single points.

#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "channel/link.h"
#include "core/interference_decoder.h"
#include "dsp/dpsk.h"
#include "dsp/msk.h"
#include "dsp/ops.h"
#include "dsp/sampling.h"
#include "util/bits.h"
#include "util/db.h"
#include "util/rng.h"

namespace anc {
namespace {

// ---- DQPSK interference decoding across SIR ---------------------------

class DqpskSirSweep : public ::testing::TestWithParam<double> {};

TEST_P(DqpskSirSweep, UnknownDqpskDecodesAcrossRelativeStrengths)
{
    const double sir_db = GetParam();
    Pcg32 rng{static_cast<std::uint64_t>(sir_db * 10 + 1000)};
    const Bits known_bits = random_bits(800, rng);
    const Bits unknown_bits = random_bits(800, rng);
    const double b = amplitude_from_db(sir_db);

    const dsp::Msk_modulator msk{1.0, rng.next_double() * 6.28};
    const dsp::Dqpsk_modulator dqpsk{b, rng.next_double() * 6.28};
    chan::Link_params drift;
    drift.phase_drift = 0.004;
    dsp::Signal mix = msk.modulate(known_bits);
    dsp::accumulate(mix, chan::Link_channel{drift}.apply(dqpsk.modulate(unknown_bits)), 0);
    chan::Awgn noise{chan::noise_power_for_snr_db(28.0), rng.fork(3)};
    noise.add_in_place(mix);

    const auto known_diffs = dsp::phase_differences_for_bits(known_bits);
    const Interference_decoder decoder;
    const auto result =
        decoder.decode_symbols(mix, known_diffs, 1.0, b, dsp::dqpsk_steps);
    Bits decoded;
    for (const std::size_t s : result.symbols) {
        const auto [b0, b1] = dsp::dqpsk_bits_for_symbol(s);
        decoded.push_back(b0);
        decoded.push_back(b1);
    }
    decoded.resize(unknown_bits.size());
    // DQPSK's pi/4 margins are half of MSK's, so allow more than Fig. 13's
    // MSK numbers, but the claim must hold: decodable across the range.
    EXPECT_LT(bit_error_rate(decoded, unknown_bits), 0.12) << "SIR " << sir_db;
}

INSTANTIATE_TEST_SUITE_P(Fig13Range, DqpskSirSweep,
                         ::testing::Values(-2.0, 0.0, 2.0, 4.0, 6.0));

// ---- Clock recovery across oversampling factors and delays ------------

struct Sampling_case {
    std::size_t factor;
    std::size_t delay;
};

class SamplingSweep : public ::testing::TestWithParam<Sampling_case> {};

TEST_P(SamplingSweep, RecoversClockAndBits)
{
    const auto [factor, delay] = GetParam();
    Pcg32 rng{factor * 100 + delay};
    const Bits bits = random_bits(400, rng);
    const dsp::Msk_modulator modulator{1.0, rng.next_double() * 6.28};
    const dsp::Msk_demodulator demodulator;

    dsp::Signal rx = dsp::delayed(dsp::upsampled(modulator.modulate(bits), factor), delay);
    chan::Awgn noise{chan::noise_power_for_snr_db(22.0), rng.fork(1)};
    noise.add_in_place(rx);

    const dsp::Signal filtered = dsp::boxcar_filtered(rx, factor);
    const std::size_t phase = dsp::recover_symbol_phase(filtered, factor);
    EXPECT_EQ(phase, (factor - 1 + delay) % factor);

    const Bits decoded = demodulator.demodulate(dsp::decimated(filtered, factor, phase));
    double best_ber = 1.0;
    for (std::size_t offset = 0; offset <= 2 && offset < decoded.size(); ++offset) {
        const std::span<const std::uint8_t> tail{decoded.data() + offset,
                                                 decoded.size() - offset};
        const std::size_t common = std::min(tail.size(), bits.size());
        best_ber = std::min(best_ber,
                            bit_error_rate(tail.first(common),
                                           std::span<const std::uint8_t>{bits}.first(common)));
    }
    EXPECT_LT(best_ber, 0.01);
}

INSTANTIATE_TEST_SUITE_P(FactorsAndDelays, SamplingSweep,
                         ::testing::Values(Sampling_case{2, 0}, Sampling_case{2, 1},
                                           Sampling_case{4, 0}, Sampling_case{4, 3},
                                           Sampling_case{8, 2}, Sampling_case{8, 7},
                                           Sampling_case{16, 9}));

// ---- Interference decoding survives oversampled front ends ------------

TEST(ExtensionIntegration, OversampledCollisionDecodesAfterClockRecovery)
{
    // The full stack: two oversampled MSK packets collide; the receiver
    // matched-filters, recovers the symbol clock, decimates, and runs the
    // symbol-spaced interference decoder of §6.
    Pcg32 rng{4242};
    const std::size_t factor = 4;
    const Bits known_bits = random_bits(600, rng);
    const Bits unknown_bits = random_bits(600, rng);
    const dsp::Msk_modulator mod_a{1.0, 0.4};
    const dsp::Msk_modulator mod_b{0.9, 1.9};

    chan::Link_params drift;
    drift.phase_drift = 0.001; // per *oversampled* tick
    dsp::Signal mix = dsp::upsampled(mod_a.modulate(known_bits), factor);
    dsp::accumulate(mix,
                    chan::Link_channel{drift}.apply(
                        dsp::upsampled(mod_b.modulate(unknown_bits), factor)),
                    0);
    chan::Awgn noise{chan::noise_power_for_snr_db(25.0), rng.fork(1)};
    noise.add_in_place(mix);

    const dsp::Signal filtered = dsp::boxcar_filtered(mix, factor);
    const std::size_t phase = dsp::recover_symbol_phase(filtered, factor);
    const dsp::Signal symbol_spaced = dsp::decimated(filtered, factor, phase);

    const auto known_diffs = dsp::phase_differences_for_bits(known_bits);
    const Interference_decoder decoder;
    // Skip the warm-up sample if the recovered phase sits before the
    // first full symbol average.
    const dsp::Signal aligned =
        dsp::slice(symbol_spaced, phase == factor - 1 ? 0 : 1, symbol_spaced.size());
    const auto result = decoder.decode(aligned, known_diffs, 1.0, 0.9);

    std::size_t errors = 0;
    std::size_t total = 0;
    for (std::size_t k = 0; k < unknown_bits.size() && k < result.bits.size(); ++k) {
        errors += (result.bits[k] != unknown_bits[k]);
        ++total;
    }
    ASSERT_GT(total, 500u);
    EXPECT_LT(static_cast<double>(errors) / static_cast<double>(total), 0.05);
}

} // namespace
} // namespace anc
