#!/bin/sh
# Shard/merge partition test: run the same grid as three --shard K/3
# slices (at 1 and 8 threads), --merge the three journals, and require
# the merged JSON/CSV to be byte-identical to a single uninterrupted
# run.  Also checks that merging an incomplete shard set is refused.
#
# usage: shard_merge_test.sh /path/to/anc_sweep
set -eu

SWEEP=${1:?usage: shard_merge_test.sh /path/to/anc_sweep}
WORKDIR=$(mktemp -d "${TMPDIR:-/tmp}/anc_shard_merge.XXXXXX")
trap 'rm -rf "$WORKDIR"' EXIT INT TERM
cd "$WORKDIR"

GRID="--scenario alice_bob --snr 18:30:4 --repetitions 3 --exchanges 8 \
      --payload-bits 512 --seed 4242 --quiet"

echo "== single-run baseline"
# shellcheck disable=SC2086   # GRID is a flag list
"$SWEEP" $GRID --threads 2 --json baseline.json --tasks-csv baseline.csv \
    --csv baseline_agg.csv

for THREADS in 1 8; do
    echo "== shards at $THREADS threads"
    for K in 1 2 3; do
        # shellcheck disable=SC2086
        "$SWEEP" $GRID --threads "$THREADS" --shard "$K/3" \
            --journal "shard$K.anj" > /dev/null
    done
    echo "== merge"
    # shellcheck disable=SC2086
    "$SWEEP" $GRID --merge shard1.anj,shard2.anj,shard3.anj \
        --json merged.json --tasks-csv merged.csv --csv merged_agg.csv
    cmp baseline.json merged.json
    cmp baseline.csv merged.csv
    cmp baseline_agg.csv merged_agg.csv
    echo "   merged output byte-identical at $THREADS threads"
    rm -f shard1.anj shard2.anj shard3.anj merged.json merged.csv merged_agg.csv
done

echo "== gap detection: merging 2 of 3 shards must fail"
# shellcheck disable=SC2086
"$SWEEP" $GRID --threads 1 --shard 1/3 --journal shard1.anj > /dev/null
# shellcheck disable=SC2086
"$SWEEP" $GRID --threads 1 --shard 2/3 --journal shard2.anj > /dev/null
# shellcheck disable=SC2086
if "$SWEEP" $GRID --merge shard1.anj,shard2.anj --json gap.json 2> gap.log; then
    echo "FAIL: incomplete merge exited 0" >&2
    exit 1
fi
grep -q "gap" gap.log
[ ! -f gap.json ] || { echo "FAIL: incomplete merge published gap.json" >&2; exit 1; }

echo "== overlap detection: the same shard twice must fail"
# shellcheck disable=SC2086
if "$SWEEP" $GRID --merge shard1.anj,shard1.anj 2> overlap.log; then
    echo "FAIL: overlapping merge exited 0" >&2
    exit 1
fi
grep -q "overlap" overlap.log
echo "PASS: shard/merge is byte-identical and gap/overlap-safe"
