#!/bin/sh
# Kill-mid-sweep crash test: start anc_sweep with a journal, SIGKILL it
# once the journal holds roughly half its task rows, resume from the
# journal, and require the final JSON/CSV to be byte-identical to an
# uninterrupted run.  SIGKILL (not SIGTERM) on purpose — no handler
# runs, so this exercises the journal's torn-line/durability story, not
# the graceful drain.
#
# usage: kill_resume_test.sh /path/to/anc_sweep
set -eu

SWEEP=${1:?usage: kill_resume_test.sh /path/to/anc_sweep}
WORKDIR=$(mktemp -d "${TMPDIR:-/tmp}/anc_kill_resume.XXXXXX")
# The trap must also reap the background sweep: if the test dies (or
# ctest kills it on TIMEOUT), a still-running worker must not wedge the
# suite or leak into later tests.
PID=
cleanup() {
    [ -n "$PID" ] && kill -KILL "$PID" 2>/dev/null
    wait 2>/dev/null
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM
cd "$WORKDIR"

# Big enough to survive until the kill lands, small enough for CI.
GRID="--scenario alice_bob --snr 10:40:2 --repetitions 4 --exchanges 40 \
      --payload-bits 512 --seed 2007 --quiet"
TASKS=$(( 16 * 3 * 4 ))   # snr points x schemes x repetitions

echo "== uninterrupted baseline"
# shellcheck disable=SC2086   # GRID is a flag list
"$SWEEP" $GRID --threads 2 --json baseline.json --tasks-csv baseline.csv \
    --csv baseline_agg.csv

echo "== start sweep with journal, SIGKILL at ~half"
# shellcheck disable=SC2086
"$SWEEP" $GRID --threads 2 --journal run.anj --json crashed.json &
PID=$!
HALF=$(( TASKS / 2 ))
# Bounded watch loop (~60 s): a hung worker must fail the test here,
# not stall it until the ctest TIMEOUT reaps the whole suite.
WAITS=0
while :; do
    kill -0 "$PID" 2>/dev/null || break
    LINES=$(wc -l < run.anj 2>/dev/null || echo 0)
    [ "$LINES" -ge "$HALF" ] && break
    WAITS=$(( WAITS + 1 ))
    if [ "$WAITS" -gt 1200 ]; then
        echo "FAIL: journal never reached $HALF lines (worker hung?)" >&2
        exit 1
    fi
    sleep 0.05
done
if kill -KILL "$PID" 2>/dev/null; then
    KILLED=1
    echo "   killed after $(wc -l < run.anj) journal lines"
else
    KILLED=0
    echo "   sweep finished before the kill landed (machine too fast)" >&2
    echo "   resuming a complete journal is still a valid check; continuing" >&2
fi
wait "$PID" 2>/dev/null || true
PID=

if [ "$KILLED" = 1 ] && [ -f crashed.json ]; then
    echo "FAIL: killed run must not publish crashed.json" >&2
    exit 1
fi
[ -s run.anj ] || { echo "FAIL: journal is empty" >&2; exit 1; }

echo "== resume from the journal"
# shellcheck disable=SC2086
"$SWEEP" $GRID --threads 2 --resume run.anj --json resumed.json \
    --tasks-csv resumed.csv --csv resumed_agg.csv 2> resume.log
grep "resumed" resume.log

echo "== byte-identity"
cmp baseline.json resumed.json
cmp baseline.csv resumed.csv
cmp baseline_agg.csv resumed_agg.csv
echo "PASS: resumed sweep is byte-identical to the uninterrupted run"
