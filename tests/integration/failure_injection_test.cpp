// Failure injection: the receiver must degrade *gracefully* — wrong
// buffers, truncated air, complete overlap, corrupted regions — never
// crash, never fabricate a packet.

#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "channel/link.h"
#include "core/anc_receiver.h"
#include "core/relay.h"
#include "dsp/ops.h"
#include "net/node.h"
#include "net/packet.h"
#include "util/bits.h"
#include "util/rng.h"

namespace anc {
namespace {

constexpr double snr_db = 25.0;
const double noise_power = chan::noise_power_for_snr_db(snr_db);

struct Collision_setup {
    net::Net_node alice{1};
    net::Net_node bob{3};
    net::Packet pa;
    net::Packet pb;
    dsp::Signal at_alice; // relay broadcast as heard by Alice
};

Collision_setup make_collision(std::uint64_t seed, std::size_t alice_start = 0,
                               std::size_t bob_start = 280)
{
    Pcg32 rng{seed};
    Collision_setup setup;
    net::Flow flow_ab{1, 3, 1024, rng.fork(1)};
    net::Flow flow_ba{3, 1, 1024, rng.fork(2)};
    setup.pa = flow_ab.next();
    setup.pb = flow_ba.next();

    dsp::Signal mix;
    dsp::accumulate(mix,
                    chan::Link_channel{{0.95, 0.5, 0, 0.002}}.apply(
                        setup.alice.transmit(setup.pa, rng)),
                    alice_start);
    dsp::accumulate(mix,
                    chan::Link_channel{{0.9, -0.9, 0, -0.002}}.apply(
                        setup.bob.transmit(setup.pb, rng)),
                    bob_start);
    chan::Awgn relay_noise{noise_power, rng.fork(3)};
    relay_noise.add_in_place(mix);
    const auto fwd = amplify_and_forward(mix, noise_power, 1.0);
    setup.at_alice = chan::Link_channel{{0.95, 1.3, 0, 0.0}}.apply(*fwd);
    chan::Awgn alice_noise{noise_power, rng.fork(4)};
    alice_noise.add_in_place(setup.at_alice);
    return setup;
}

Anc_receiver make_receiver()
{
    return Anc_receiver{Anc_receiver_config{}, noise_power};
}

TEST(FailureInjection, WrongPacketInBufferFailsCleanly)
{
    Collision_setup setup = make_collision(501);
    // Alice's buffer holds a *different* packet than the one on the air.
    Pcg32 rng{502};
    net::Net_node impostor{1};
    net::Flow other{1, 3, 1024, rng};
    const net::Packet stale = other.next();
    net::Packet shifted = stale;
    shifted.seq = 999;
    impostor.remember(shifted);

    const Anc_receiver receiver = make_receiver();
    const Receive_outcome outcome = receiver.receive(setup.at_alice, impostor.buffer());
    // Neither header matches the buffer: no decode, but both headers are
    // readable, so the collision is forwardable.
    EXPECT_NE(outcome.status, Receive_status::decoded_interference);
    EXPECT_EQ(outcome.diag.failure, Decode_failure::no_known_header);
}

TEST(FailureInjection, TruncatedReceptionNoCrash)
{
    const Collision_setup setup = make_collision(503);
    const Anc_receiver receiver = make_receiver();
    for (const double keep : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        const auto truncated = dsp::slice(
            setup.at_alice, 0,
            static_cast<std::size_t>(keep * static_cast<double>(setup.at_alice.size())));
        const Receive_outcome outcome = receiver.receive(truncated, setup.alice.buffer());
        // Whatever the status, no fabricated payload of the wrong packet:
        if (outcome.status == Receive_status::decoded_interference) {
            EXPECT_EQ(outcome.frame->header.seq, setup.pb.seq);
        }
    }
}

TEST(FailureInjection, CompleteOverlapNeverDecodesWrongPacket)
{
    // Identical start instants — the case the trigger protocol exists to
    // prevent (§7.2).  Interestingly it is not always fatal: both frames
    // carry the *same* pilot at the same offset, so the superimposed
    // pilots reinforce (two MSK signals with identical phase steps sum to
    // one MSK signal) and alignment comes for free; the stronger header
    // may then capture-decode and the collision resolves.  The property
    // that must hold unconditionally: the receiver never reports the
    // wrong packet or a garbage payload as success.
    const Collision_setup setup = make_collision(504, 200, 200);
    const Anc_receiver receiver = make_receiver();
    const Receive_outcome outcome = receiver.receive(setup.at_alice, setup.alice.buffer());
    if (outcome.status == Receive_status::decoded_interference) {
        EXPECT_EQ(outcome.frame->header.src, setup.pb.src);
        EXPECT_EQ(outcome.frame->header.seq, setup.pb.seq);
        EXPECT_LT(bit_error_rate(outcome.frame->payload, setup.pb.payload), 0.15);
    } else {
        EXPECT_NE(outcome.status, Receive_status::clean);
    }
}

TEST(FailureInjection, EmptyAndTinyStreams)
{
    const Anc_receiver receiver = make_receiver();
    const Sent_packet_buffer empty;
    EXPECT_EQ(receiver.receive(dsp::Signal{}, empty).status, Receive_status::no_packet);
    EXPECT_EQ(receiver.receive(dsp::Signal(3, dsp::Sample{1.0, 0.0}), empty).status,
              Receive_status::no_packet);
}

TEST(FailureInjection, StrongNoiseBurstIsNotAPacket)
{
    // A burst of pure noise 25 dB above the floor trips the energy
    // detector but must not produce a packet.
    Pcg32 rng{505};
    dsp::Signal burst(2000, dsp::Sample{0.0, 0.0});
    chan::Awgn strong{noise_power * 316.0, rng.fork(1)};
    strong.add_in_place(burst);
    const Anc_receiver receiver = make_receiver();
    const Sent_packet_buffer empty;
    const Receive_outcome outcome = receiver.receive(burst, empty);
    EXPECT_NE(outcome.status, Receive_status::clean);
    EXPECT_NE(outcome.status, Receive_status::decoded_interference);
}

TEST(FailureInjection, RelayIgnoresSilence)
{
    Pcg32 rng{506};
    dsp::Signal silence(1000, dsp::Sample{0.0, 0.0});
    chan::Awgn floor{noise_power, rng};
    floor.add_in_place(silence);
    EXPECT_FALSE(amplify_and_forward(silence, noise_power, 1.0).has_value());
}

TEST(FailureInjection, DecodedPayloadNeverExceedsHeaderLength)
{
    const Collision_setup setup = make_collision(507);
    const Anc_receiver receiver = make_receiver();
    const Receive_outcome outcome = receiver.receive(setup.at_alice, setup.alice.buffer());
    if (outcome.frame) {
        EXPECT_EQ(outcome.frame->payload.size(), outcome.frame->header.payload_bits);
    }
}

TEST(FailureInjection, ReceiverIsConstAndReusable)
{
    // One receiver instance across many different streams: stateless.
    const Anc_receiver receiver = make_receiver();
    for (std::uint64_t seed = 601; seed < 609; ++seed) {
        const Collision_setup setup = make_collision(seed);
        const Receive_outcome outcome =
            receiver.receive(setup.at_alice, setup.alice.buffer());
        if (outcome.status == Receive_status::decoded_interference) {
            EXPECT_EQ(outcome.frame->header.seq, setup.pb.seq);
        }
    }
}

TEST(FailureInjection, TailRecoveryWhenUnknownHeadIsJammed)
{
    // A strong noise burst over the unknown packet's leading pilot and
    // header: the head-side framing fails, but the frame also carries
    // mirrored copies at its tail (§7.4), which sit in the
    // interference-free region — the receiver must recover through them.
    Collision_setup setup = make_collision(520, 0, 280);
    // Bob's head (pilot+header+crc = 160 bits) starts at sample ~280 of
    // the broadcast; jam a window around it.
    Pcg32 rng{521};
    chan::Awgn jam{1.0, rng};
    for (std::size_t i = 280; i < 470 && i < setup.at_alice.size(); ++i)
        setup.at_alice[i] += jam.sample();

    const Anc_receiver receiver = make_receiver();
    const Receive_outcome outcome = receiver.receive(setup.at_alice, setup.alice.buffer());
    ASSERT_EQ(outcome.status, Receive_status::decoded_interference);
    EXPECT_EQ(outcome.frame->header.seq, setup.pb.seq);
    // The jammed stretch corrupts some payload bits but the bulk decodes.
    EXPECT_LT(bit_error_rate(outcome.frame->payload, setup.pb.payload), 0.25);
}

TEST(FailureInjection, MismatchedNoiseFloorDegradesButNoCrash)
{
    // The receiver's noise-floor estimate is 10 dB off: detection
    // thresholds shift but nothing crashes.
    const Collision_setup setup = make_collision(510);
    const Anc_receiver optimistic{Anc_receiver_config{}, noise_power / 10.0};
    const Anc_receiver pessimistic{Anc_receiver_config{}, noise_power * 10.0};
    EXPECT_NO_THROW({
        (void)optimistic.receive(setup.at_alice, setup.alice.buffer());
        (void)pessimistic.receive(setup.at_alice, setup.alice.buffer());
    });
}

} // namespace
} // namespace anc
