#!/bin/sh
# The anc_sweep exit-code and stderr-summary contract:
#   0  success                      2  usage / incompatible inputs
#   3  task errors or merge gaps    4  interrupted by signal
# plus the machine-greppable one-line summary
#   "anc_sweep: N ok, N error, N skipped, resumed N[ [interrupted]]"
# that must land on stderr on every path, --quiet included.
#
# usage: sweep_exit_codes_test.sh /path/to/anc_sweep
set -eu

SWEEP=${1:?usage: sweep_exit_codes_test.sh /path/to/anc_sweep}
WORKDIR=$(mktemp -d "${TMPDIR:-/tmp}/anc_exit_codes.XXXXXX")
PID=
cleanup() {
    [ -n "$PID" ] && kill -KILL "$PID" 2>/dev/null
    wait 2>/dev/null
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM
cd "$WORKDIR"

GRID="--scenario alice_bob --snr 20,30 --repetitions 2 --exchanges 4 \
      --payload-bits 256 --seed 99 --quiet"

# rc CMD... : run CMD, print its exit status, never trip set -e.
rc() { "$@" >/dev/null 2>stderr.log && echo 0 || echo $?; }

echo "== exit 0: clean run, summary line present even under --quiet"
# shellcheck disable=SC2086   # GRID is a flag list
[ "$(rc "$SWEEP" $GRID --threads 2)" = 0 ]
grep -E '^anc_sweep: [0-9]+ ok, 0 error, 0 skipped, resumed 0$' stderr.log

echo "== exit 2: usage errors"
[ "$(rc "$SWEEP")" = 2 ]                              # no --scenario
# shellcheck disable=SC2086
[ "$(rc "$SWEEP" $GRID --no-such-flag)" = 2 ]         # unknown flag
# shellcheck disable=SC2086
[ "$(rc "$SWEEP" $GRID --shard 4/3)" = 2 ]            # K > N
# shellcheck disable=SC2086
[ "$(rc "$SWEEP" $GRID --snr 30:10:2)" = 2 ]          # inverted range
# shellcheck disable=SC2086
[ "$(rc "$SWEEP" $GRID --merge a.anj --journal b.anj)" = 2 ]  # merge conflicts

echo "== exit 2: incompatible resume journal (different seed)"
# shellcheck disable=SC2086
"$SWEEP" $GRID --threads 1 --journal seed99.anj >/dev/null 2>&1
# shellcheck disable=SC2086
OTHER_SEED=$(echo "$GRID" | sed 's/--seed 99/--seed 100/')
# shellcheck disable=SC2086
[ "$(rc "$SWEEP" $OTHER_SEED --resume seed99.anj)" = 2 ]
grep -q "seed" stderr.log

echo "== exit 3: merge with gaps (missing shard journal)"
# shellcheck disable=SC2086
"$SWEEP" $GRID --threads 1 --shard 1/2 --journal shard1.anj >/dev/null 2>&1
# shellcheck disable=SC2086
"$SWEEP" $GRID --threads 1 --shard 2/2 --journal shard2.anj >/dev/null 2>&1
# Chop shard 2 down to its header: formally valid, zero task rows.
head -n 2 shard2.anj > shard2_empty.anj
# shellcheck disable=SC2086
[ "$(rc "$SWEEP" $GRID --merge shard1.anj,shard2_empty.anj)" = 3 ]
grep -q "merge is missing" stderr.log
grep -E '^anc_sweep: ' stderr.log

echo "== exit 4: interrupted by SIGTERM, summary says [interrupted]"
BIG="--scenario alice_bob --snr 10:40:1 --repetitions 6 --exchanges 40 \
     --payload-bits 512 --seed 99 --quiet"
# shellcheck disable=SC2086
"$SWEEP" $BIG --threads 1 --journal big.anj >/dev/null 2>interrupt.log &
PID=$!
# Let it finish a few tasks first (bounded wait, ~30 s cap).
WAITS=0
while [ "$({ wc -l < big.anj; } 2>/dev/null || echo 0)" -lt 5 ]; do
    kill -0 "$PID" 2>/dev/null || break
    WAITS=$(( WAITS + 1 ))
    [ "$WAITS" -gt 600 ] && { echo "FAIL: sweep never progressed" >&2; exit 1; }
    sleep 0.05
done
kill -TERM "$PID" 2>/dev/null || {
    echo "machine too fast: sweep finished before SIGTERM; skipping exit-4 leg" >&2
    wait "$PID" 2>/dev/null || true
    PID=
    echo "PASS: exit codes 0/2/3 and summary contract hold"
    exit 0
}
STATUS=0
wait "$PID" || STATUS=$?
PID=
[ "$STATUS" = 4 ] || { echo "FAIL: interrupted run exited $STATUS, want 4" >&2; exit 1; }
grep -q "\[interrupted\]" interrupt.log

echo "== interrupted journal resumes to completion with exit 0"
# shellcheck disable=SC2086
[ "$(rc "$SWEEP" $BIG --threads 2 --resume big.anj)" = 0 ]
grep -E 'resumed [1-9][0-9]*$' stderr.log

echo "PASS: exit codes 0/2/3/4 and the summary-line contract hold"
