#!/bin/sh
# Coordinator chaos test (ENGINE.md "Coordinator"): run a sweep under
# anc_coordinator while SIGKILLing random worker processes at random
# times, and require the merged artifacts to stay byte-identical to an
# uninterrupted single-process anc_sweep run — the merge-equivalence
# guarantee under real process deaths, not just the unit tests' fakes.
# Runs the 4-worker chaos leg plus the 1- and 8-worker configurations.
#
# usage: coordinator_chaos_test.sh /path/to/anc_coordinator /path/to/anc_sweep
set -eu

COORD=${1:?usage: coordinator_chaos_test.sh /path/to/anc_coordinator /path/to/anc_sweep}
SWEEP=${2:?usage: coordinator_chaos_test.sh /path/to/anc_coordinator /path/to/anc_sweep}
WORKDIR=$(mktemp -d "${TMPDIR:-/tmp}/anc_coord_chaos.XXXXXX")
COORD_PID=
cleanup() {
    # Reap the coordinator AND any orphaned workers: a wedged child must
    # not outlive the test or hold the ctest runner open.
    [ -n "$COORD_PID" ] && kill -KILL "$COORD_PID" 2>/dev/null
    pkill -KILL -f "$WORKDIR/" 2>/dev/null || true
    wait 2>/dev/null
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM
cd "$WORKDIR"

GRID="--scenario alice_bob --snr 10:38:4 --repetitions 4 --exchanges 30 \
      --payload-bits 512 --seed 777"

echo "== uninterrupted single-process baseline"
# shellcheck disable=SC2086   # GRID is a flag list
"$SWEEP" $GRID --quiet --threads 2 --json baseline.json \
    --csv baseline_agg.csv --tasks-csv baseline_tasks.csv

# chaos_run WORKERS SHARDS KILLS: coordinate the grid, SIGKILL up to
# KILLS random workers while it runs, require exit 0 and baseline bytes.
chaos_run() {
    WORKERS=$1; SHARDS=$2; KILLS=$3
    CDIR="$WORKDIR/wd_w$WORKERS"
    echo "== chaos: $WORKERS workers, $SHARDS shards, up to $KILLS kills"
    # Liveality knobs: generous heartbeat (the box may be slow; stalls
    # are the unit tests' domain) and plenty of retries for the kills.
    # shellcheck disable=SC2086
    "$COORD" --worker "$SWEEP" --workers "$WORKERS" --shards "$SHARDS" \
        --work-dir "$CDIR" --shard-retries 20 --heartbeat-ms 60000 \
        --poll-ms 20 $GRID --quiet \
        --json "out_w$WORKERS.json" --csv "out_w${WORKERS}_agg.csv" \
        --tasks-csv "out_w${WORKERS}_tasks.csv" \
        --metrics-json "metrics_w$WORKERS.json" 2> "coord_w$WORKERS.log" &
    COORD_PID=$!

    # Workers (not the coordinator) carry "$CDIR/shard" in their argv:
    # the --journal/--resume path.  The coordinator only has --work-dir.
    KILLED=0
    TICK=0
    while kill -0 "$COORD_PID" 2>/dev/null && [ "$KILLED" -lt "$KILLS" ]; do
        sleep 0.4
        TICK=$(( TICK + 1 ))
        [ "$TICK" -gt 600 ] && break   # bounded: never outwait ctest
        VICTIM=$(pgrep -f "$CDIR/shard" | awk -v s="$TICK" \
            'BEGIN{srand(s)} {a[NR]=$0} END{if(NR) print a[int(rand()*NR)+1]}')
        [ -n "$VICTIM" ] || continue
        if kill -KILL "$VICTIM" 2>/dev/null; then
            KILLED=$(( KILLED + 1 ))
            echo "   SIGKILLed worker pid $VICTIM ($KILLED/$KILLS)"
        fi
    done

    STATUS=0
    wait "$COORD_PID" || STATUS=$?
    COORD_PID=
    if [ "$STATUS" != 0 ]; then
        echo "FAIL: coordinator exited $STATUS after $KILLED kills" >&2
        cat "coord_w$WORKERS.log" >&2
        exit 1
    fi
    cmp baseline.json "out_w$WORKERS.json"
    cmp baseline_agg.csv "out_w${WORKERS}_agg.csv"
    cmp baseline_tasks.csv "out_w${WORKERS}_tasks.csv"
    grep -q '"schema":"anc.metrics.v1"' "metrics_w$WORKERS.json"
    grep -q '"coordinator":' "metrics_w$WORKERS.json"
    REASSIGNED=$(sed 's/.*"reassignments":\([0-9]*\).*/\1/' "metrics_w$WORKERS.json")
    echo "   byte-identical after $KILLED kills ($REASSIGNED reassignments)"
}

chaos_run 4 8 4
chaos_run 1 2 2
chaos_run 8 8 3

echo "PASS: merged output byte-identical under worker SIGKILLs at 1/4/8 workers"
