// Cross-module integration checks: the paper's headline *relations* must
// hold on small runs (the benches reproduce the full-scale numbers).

#include <gtest/gtest.h>

#include "phy/frame.h"

#include "capacity/capacity.h"
#include "sim/alice_bob.h"
#include "sim/chain.h"
#include "sim/x_topology.h"
#include "util/db.h"

namespace anc::sim {
namespace {

TEST(EndToEnd, SchemeOrderingOnAliceBob)
{
    // ANC > COPE > traditional in throughput, as in §11.4.
    Alice_bob_config config;
    config.payload_bits = 1024;
    config.exchanges = 10;
    config.seed = 42;
    const double anc = run_alice_bob_anc(config).metrics.throughput();
    const double cope = run_alice_bob_cope(config).metrics.throughput();
    const double traditional = run_alice_bob_traditional(config).metrics.throughput();
    EXPECT_GT(anc, cope);
    EXPECT_GT(cope, traditional);
}

TEST(EndToEnd, SlotRatiosApproximateTheory)
{
    // Airtime per delivered packet should approach the 2:3:4 slot pattern
    // of Fig. 1 (ANC pays extra for jitter).
    Alice_bob_config config;
    config.payload_bits = 1024;
    config.exchanges = 10;
    config.seed = 43;
    const auto anc = run_alice_bob_anc(config);
    const auto cope = run_alice_bob_cope(config);
    const auto traditional = run_alice_bob_traditional(config);

    const double anc_air = anc.metrics.airtime_symbols
        / static_cast<double>(anc.metrics.packets_attempted);
    const double cope_air = cope.metrics.airtime_symbols
        / static_cast<double>(cope.metrics.packets_attempted);
    const double trad_air = traditional.metrics.airtime_symbols
        / static_cast<double>(traditional.metrics.packets_attempted);

    EXPECT_LT(anc_air, cope_air);
    EXPECT_LT(cope_air, trad_air);
    // Traditional is exactly 2 frames per packet; ANC must be within
    // (1, 1.35) frames per packet given jitter.
    const double frame_symbols = static_cast<double>(phy::frame_length(1024) + 1);
    EXPECT_NEAR(trad_air / frame_symbols, 2.0, 0.01);
    EXPECT_GT(anc_air / frame_symbols, 1.0);
    EXPECT_LT(anc_air / frame_symbols, 1.45);
}

TEST(EndToEnd, ChainGainBelowAliceBobGain)
{
    // Alice-Bob halves slots (gain -> 2), the chain cuts 3 to 2
    // (gain -> 1.5); the measured ordering must match.
    Alice_bob_config ab_config;
    ab_config.payload_bits = 1024;
    ab_config.exchanges = 10;
    ab_config.seed = 44;
    const double ab_gain = gain(run_alice_bob_anc(ab_config).metrics,
                                run_alice_bob_traditional(ab_config).metrics);

    Chain_config chain_config;
    chain_config.payload_bits = 1024;
    chain_config.packets = 10;
    chain_config.seed = 44;
    const double chain_gain = gain(run_chain_anc(chain_config).metrics,
                                   run_chain_traditional(chain_config).metrics);

    EXPECT_GT(ab_gain, chain_gain);
    EXPECT_GT(chain_gain, 1.1);
}

TEST(EndToEnd, XGainSlightlyBelowAliceBob)
{
    // §11.5: overhearing losses shave a few points off the X gains.
    Alice_bob_config ab_config;
    ab_config.payload_bits = 1024;
    ab_config.exchanges = 12;
    ab_config.seed = 45;
    const double ab_gain = gain(run_alice_bob_anc(ab_config).metrics,
                                run_alice_bob_traditional(ab_config).metrics);

    X_config x_config;
    x_config.payload_bits = 1024;
    x_config.exchanges = 12;
    x_config.seed = 45;
    const double x_gain = gain(run_x_anc(x_config).metrics,
                               run_x_traditional(x_config).metrics);

    EXPECT_LE(x_gain, ab_gain + 0.10);
    EXPECT_GT(x_gain, 1.1);
}

TEST(EndToEnd, MeasuredGainBelowCapacityBound)
{
    // The information-theoretic gain bound (2x) must dominate anything the
    // packet simulation achieves.
    Alice_bob_config config;
    config.payload_bits = 1024;
    config.exchanges = 10;
    config.seed = 46;
    const double measured = gain(run_alice_bob_anc(config).metrics,
                                 run_alice_bob_traditional(config).metrics);
    const double theoretical = cap::capacity_gain(from_db(config.snr_db));
    EXPECT_LT(measured, 2.0);
    EXPECT_GT(theoretical, measured * 0.8); // same ballpark, theory above
}

TEST(EndToEnd, AncBerWellUnderFecBudget)
{
    // The FEC substrate must be able to absorb the residual BER the
    // decoder leaves: Hamming(7,4) corrects 1/7 ~ 14% worst-case isolated
    // errors, far above the observed means.
    Alice_bob_config config;
    config.payload_bits = 1024;
    config.exchanges = 10;
    config.seed = 47;
    const auto result = run_alice_bob_anc(config);
    EXPECT_LT(result.metrics.mean_ber(), 0.08);
}

} // namespace
} // namespace anc::sim
