#include "sim/chain.h"

#include <gtest/gtest.h>

#include "phy/frame.h"

#include "sim/alice_bob.h"

namespace anc::sim {
namespace {

Chain_config small_config(std::uint64_t seed)
{
    Chain_config config;
    config.payload_bits = 1024;
    config.packets = 8;
    config.seed = seed;
    return config;
}

TEST(ChainSim, TraditionalDeliversEverything)
{
    const Chain_result result = run_chain_traditional(small_config(1));
    EXPECT_EQ(result.metrics.packets_attempted, 8u);
    EXPECT_EQ(result.metrics.packets_delivered, 8u);
    EXPECT_LT(result.metrics.mean_ber(), 0.001);
}

TEST(ChainSim, TraditionalUsesThreeSlotsPerPacket)
{
    const Chain_config config = small_config(2);
    const Chain_result result = run_chain_traditional(config);
    const double frame_symbols = static_cast<double>(phy::frame_length(1024) + 1);
    EXPECT_NEAR(result.metrics.airtime_symbols,
                3.0 * frame_symbols * static_cast<double>(config.packets), 1.0);
}

TEST(ChainSim, AncDeliversMostPackets)
{
    const Chain_result result = run_chain_anc(small_config(3));
    EXPECT_EQ(result.metrics.packets_attempted, 8u);
    EXPECT_GE(result.metrics.packets_delivered, 7u);
}

TEST(ChainSim, AncBeatsTraditional)
{
    const Chain_config config = small_config(4);
    const Chain_result anc = run_chain_anc(config);
    const Chain_result traditional = run_chain_traditional(config);
    const double g = gain(anc.metrics, traditional.metrics);
    // Paper: ~1.36 measured, 1.5 theoretical.
    EXPECT_GT(g, 1.15);
    EXPECT_LT(g, 1.55);
}

TEST(ChainSim, BerLowerThanAliceBob)
{
    // §11.6: the chain decodes at the collision point, skipping the
    // amplified-noise broadcast, so its BER is lower.  The effect is
    // driven by the relay re-amplifying its own receiver noise, so it is
    // measured at the lower end of the operating band (22 dB), where
    // noise — not decoder ambiguity — dominates the residual errors.
    Chain_config chain_config = small_config(5);
    chain_config.packets = 20;
    chain_config.snr_db = 22.0;
    const Chain_result chain = run_chain_anc(chain_config);

    Alice_bob_config ab_config;
    ab_config.payload_bits = 1024;
    ab_config.exchanges = 20;
    ab_config.seed = 5;
    ab_config.snr_db = 22.0;
    const Alice_bob_result ab = run_alice_bob_anc(ab_config);

    ASSERT_FALSE(chain.ber_at_n2.empty());
    ASSERT_FALSE(ab.metrics.packet_ber.empty());
    EXPECT_LT(chain.ber_at_n2.mean(), ab.metrics.packet_ber.mean() + 1e-9);
}

TEST(ChainSim, EndToEndPayloadsFaithful)
{
    Chain_config config = small_config(6);
    config.packets = 10;
    const Chain_result result = run_chain_anc(config);
    // Delivered packets' BER must be small: errors can only creep in via
    // the N2 interference decode and then propagate.
    EXPECT_LT(result.metrics.mean_ber(), 0.05);
}

TEST(ChainSim, DeterministicForSeed)
{
    const Chain_result a = run_chain_anc(small_config(7));
    const Chain_result b = run_chain_anc(small_config(7));
    EXPECT_EQ(a.metrics.packets_delivered, b.metrics.packets_delivered);
    EXPECT_DOUBLE_EQ(a.metrics.airtime_symbols, b.metrics.airtime_symbols);
}

} // namespace
} // namespace anc::sim
