#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace anc::sim {
namespace {

TEST(Metrics, EmptyRunIsZero)
{
    const Run_metrics metrics;
    EXPECT_DOUBLE_EQ(metrics.mean_ber(), 0.0);
    EXPECT_DOUBLE_EQ(metrics.delivery_rate(), 0.0);
    EXPECT_DOUBLE_EQ(metrics.throughput(), 0.0);
    EXPECT_DOUBLE_EQ(metrics.raw_throughput(), 0.0);
    EXPECT_DOUBLE_EQ(metrics.mean_overlap(), 0.0);
}

TEST(Metrics, RawThroughput)
{
    Run_metrics metrics;
    metrics.payload_bits_delivered = 1000;
    metrics.airtime_symbols = 2000.0;
    EXPECT_DOUBLE_EQ(metrics.raw_throughput(), 0.5);
}

TEST(Metrics, FecChargeReducesThroughput)
{
    Run_metrics metrics;
    metrics.payload_bits_delivered = 1000;
    metrics.airtime_symbols = 1000.0;
    metrics.packet_ber.add(0.04); // paper's 4% BER -> 8% redundancy
    EXPECT_NEAR(metrics.throughput(), 1.0 / 1.08, 1e-12);
}

TEST(Metrics, ZeroBerNoCharge)
{
    Run_metrics metrics;
    metrics.payload_bits_delivered = 500;
    metrics.airtime_symbols = 500.0;
    metrics.packet_ber.add(0.0);
    EXPECT_DOUBLE_EQ(metrics.throughput(), metrics.raw_throughput());
}

TEST(Metrics, DeliveryRate)
{
    Run_metrics metrics;
    metrics.packets_attempted = 10;
    metrics.packets_delivered = 7;
    EXPECT_DOUBLE_EQ(metrics.delivery_rate(), 0.7);
}

TEST(Metrics, GainIsThroughputRatio)
{
    Run_metrics anc;
    anc.payload_bits_delivered = 2000;
    anc.airtime_symbols = 1000.0;
    Run_metrics base;
    base.payload_bits_delivered = 1000;
    base.airtime_symbols = 1000.0;
    EXPECT_DOUBLE_EQ(gain(anc, base), 2.0);
}

TEST(Metrics, GainThrowsOnDeadBaseline)
{
    Run_metrics anc;
    anc.payload_bits_delivered = 100;
    anc.airtime_symbols = 100.0;
    const Run_metrics dead;
    EXPECT_THROW(gain(anc, dead), std::domain_error);
}

} // namespace
} // namespace anc::sim
