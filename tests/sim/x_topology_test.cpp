#include "sim/x_topology.h"

#include <gtest/gtest.h>

namespace anc::sim {
namespace {

X_config small_config(std::uint64_t seed)
{
    X_config config;
    config.payload_bits = 1024;
    config.exchanges = 6;
    config.seed = seed;
    return config;
}

TEST(XSim, TraditionalDeliversEverything)
{
    const X_result result = run_x_traditional(small_config(1));
    EXPECT_EQ(result.metrics.packets_attempted, 12u);
    EXPECT_EQ(result.metrics.packets_delivered, 12u);
}

TEST(XSim, CopeDeliversNearlyEverything)
{
    const X_result result = run_x_cope(small_config(2));
    // Overhearing happens on clean transmissions under COPE; losses should
    // be rare.
    EXPECT_GE(result.metrics.packets_delivered, 11u);
    EXPECT_LE(result.overhear_failures, 1u);
}

TEST(XSim, CopeDeliversAtBottomOfBand)
{
    // Regression for the ROADMAP item "x_topology/cope delivers 0 packets
    // at 20 dB SNR": the overhear link (gain 0.5, ~6 dB below a spoke)
    // put the snooped packet *under* the default 15 dB detection
    // threshold at 20 dB SNR, so overhearing failed deterministically at
    // every seed and no COPE packet could ever be decoded.  The snoop
    // path now listens with a threshold lowered by the overhear link's
    // budget deficit.
    for (const std::uint64_t seed : {1ull, 2ull, 42ull}) {
        X_config config = small_config(seed);
        config.snr_db = 20.0;
        const X_result result = run_x_cope(config);
        EXPECT_GT(result.metrics.packets_delivered, 0u) << "seed " << seed;
        EXPECT_GE(result.metrics.packets_delivered,
                  result.metrics.packets_attempted / 2)
            << "seed " << seed;
    }
}

TEST(XSim, SnoopThresholdDoesNotDisturbHighSnr)
{
    // At 25 dB the historical 15 dB threshold already overheard fine;
    // the lowered per-link snoop default must deliver at least as much
    // there.  Clearing the override restores the pre-fix behavior (the
    // snooper falls back to the standard carrier-sense threshold).
    X_config historical = small_config(2);
    historical.gains.overhear_detection_threshold_db.reset(); // pre-fix
    const X_result old_threshold = run_x_cope(historical);
    const X_result new_threshold = run_x_cope(small_config(2));
    EXPECT_GE(new_threshold.metrics.packets_delivered,
              old_threshold.metrics.packets_delivered);
    EXPECT_LE(new_threshold.overhear_failures, old_threshold.overhear_failures);
}

TEST(XSim, AgcRuleKeepsBottomOfBandOverhearing)
{
    // The general Medium-layer form of the 20 dB fix: derive the
    // overhear links' threshold from the AGC rule (base carrier-sense
    // threshold minus the link's budget deficit) instead of the rounded
    // historical 9 dB, and COPE must still deliver at 20 dB SNR.
    for (const std::uint64_t seed : {1ull, 2ull, 42ull}) {
        X_config config = small_config(seed);
        config.snr_db = 20.0;
        config.gains.overhear_detection_threshold_db =
            chan::agc_detection_threshold_db(
                phy::Packet_detector::Config{}.energy_threshold_db,
                config.gains.overhear);
        const X_result result = run_x_cope(config);
        EXPECT_GT(result.metrics.packets_delivered, 0u) << "seed " << seed;
        EXPECT_GE(result.metrics.packets_delivered,
                  result.metrics.packets_attempted / 2)
            << "seed " << seed;
    }
}

TEST(XSim, AncDeliversMost)
{
    X_config config = small_config(3);
    config.exchanges = 10;
    const X_result result = run_x_anc(config);
    EXPECT_EQ(result.metrics.packets_attempted, 20u);
    // Overhearing under interference occasionally fails (§11.5).
    EXPECT_GE(result.metrics.packets_delivered, 14u);
}

TEST(XSim, AncBeatsTraditional)
{
    const X_config config = small_config(4);
    const X_result anc = run_x_anc(config);
    const X_result traditional = run_x_traditional(config);
    const double g = gain(anc.metrics, traditional.metrics);
    EXPECT_GT(g, 1.2);
    EXPECT_LT(g, 2.0);
}

TEST(XSim, AncBeatsCope)
{
    X_config config = small_config(5);
    config.exchanges = 10;
    const X_result anc = run_x_anc(config);
    const X_result cope = run_x_cope(config);
    EXPECT_GT(gain(anc.metrics, cope.metrics), 1.0);
}

TEST(XSim, OverhearingFailuresTracked)
{
    X_config config = small_config(6);
    config.exchanges = 15;
    const X_result result = run_x_anc(config);
    EXPECT_EQ(result.overhear_attempts, 30u);
    // Failure rate should be modest but can be non-zero.
    EXPECT_LT(result.overhear_failure_rate(), 0.4);
}

TEST(XSim, WeakerOverhearLinkHurtsDelivery)
{
    X_config good = small_config(7);
    good.exchanges = 12;
    X_config bad = good;
    bad.gains.overhear = 0.30; // barely above the packet detector floor
    const X_result strong = run_x_anc(good);
    const X_result weak = run_x_anc(bad);
    EXPECT_GE(strong.metrics.packets_delivered, weak.metrics.packets_delivered);
}

TEST(XSim, DeterministicForSeed)
{
    const X_result a = run_x_anc(small_config(8));
    const X_result b = run_x_anc(small_config(8));
    EXPECT_EQ(a.metrics.packets_delivered, b.metrics.packets_delivered);
    EXPECT_EQ(a.overhear_failures, b.overhear_failures);
}

} // namespace
} // namespace anc::sim
