#include "sim/alice_bob.h"

#include <gtest/gtest.h>

#include "phy/frame.h"

namespace anc::sim {
namespace {

Alice_bob_config small_config(std::uint64_t seed)
{
    Alice_bob_config config;
    config.payload_bits = 1024;
    config.exchanges = 6;
    config.seed = seed;
    return config;
}

TEST(AliceBobSim, TraditionalDeliversEverything)
{
    const Alice_bob_result result = run_alice_bob_traditional(small_config(1));
    EXPECT_EQ(result.metrics.packets_attempted, 12u);
    EXPECT_EQ(result.metrics.packets_delivered, 12u);
    // At 25 dB the per-hop BER is essentially zero.
    EXPECT_LT(result.metrics.mean_ber(), 0.001);
}

TEST(AliceBobSim, TraditionalUsesFourSlotsPerPair)
{
    const Alice_bob_config config = small_config(2);
    const Alice_bob_result result = run_alice_bob_traditional(config);
    const double frame_symbols = static_cast<double>(phy::frame_length(1024) + 1);
    EXPECT_NEAR(result.metrics.airtime_symbols,
                4.0 * frame_symbols * static_cast<double>(config.exchanges),
                1.0);
}

TEST(AliceBobSim, CopeDeliversEverything)
{
    const Alice_bob_result result = run_alice_bob_cope(small_config(3));
    EXPECT_EQ(result.metrics.packets_delivered, 12u);
    EXPECT_LT(result.metrics.mean_ber(), 0.001);
}

TEST(AliceBobSim, CopeUsesThreeSlotsPerPair)
{
    const Alice_bob_config config = small_config(4);
    const Alice_bob_result result = run_alice_bob_cope(config);
    const double data_frame = static_cast<double>(phy::frame_length(1024) + 1);
    const double coded_frame = static_cast<double>(phy::frame_length(1024 + 128) + 1);
    EXPECT_NEAR(result.metrics.airtime_symbols,
                (2.0 * data_frame + coded_frame) * static_cast<double>(config.exchanges),
                1.0);
}

TEST(AliceBobSim, AncDeliversWithLowBer)
{
    const Alice_bob_result result = run_alice_bob_anc(small_config(5));
    EXPECT_EQ(result.metrics.packets_attempted, 12u);
    // Decoding through a collision is lossier than clean hops, but at
    // 25 dB nearly every packet should make it.
    EXPECT_GE(result.metrics.packets_delivered, 10u);
    // Average BER in the paper's band (well under 10%).
    EXPECT_LT(result.metrics.mean_ber(), 0.10);
}

TEST(AliceBobSim, AncBeatsTraditionalThroughput)
{
    const Alice_bob_config config = small_config(6);
    const Alice_bob_result anc = run_alice_bob_anc(config);
    const Alice_bob_result traditional = run_alice_bob_traditional(config);
    const double g = gain(anc.metrics, traditional.metrics);
    EXPECT_GT(g, 1.3);
    EXPECT_LT(g, 2.0);
}

TEST(AliceBobSim, AncBeatsCopeThroughput)
{
    const Alice_bob_config config = small_config(7);
    const Alice_bob_result anc = run_alice_bob_anc(config);
    const Alice_bob_result cope = run_alice_bob_cope(config);
    const double g = gain(anc.metrics, cope.metrics);
    EXPECT_GT(g, 1.05);
    EXPECT_LT(g, 1.6);
}

TEST(AliceBobSim, CopeBeatsTraditional)
{
    const Alice_bob_config config = small_config(8);
    const Alice_bob_result cope = run_alice_bob_cope(config);
    const Alice_bob_result traditional = run_alice_bob_traditional(config);
    const double g = gain(cope.metrics, traditional.metrics);
    // Theoretical 4/3 minus the slightly longer coded frame.
    EXPECT_GT(g, 1.15);
    EXPECT_LT(g, 1.40);
}

TEST(AliceBobSim, AncOverlapNearPaperValue)
{
    // These short-frame test runs (1024-bit payloads) overlap ~67%; the
    // paper's 80% operating point holds for the default 2048-bit frames
    // (see the Fig. 9 bench and the trigger tests).
    Alice_bob_config config = small_config(9);
    config.exchanges = 20;
    const Alice_bob_result result = run_alice_bob_anc(config);
    EXPECT_GT(result.metrics.mean_overlap(), 0.55);
    EXPECT_LT(result.metrics.mean_overlap(), 0.85);
}

TEST(AliceBobSim, DeterministicForSeed)
{
    const Alice_bob_result a = run_alice_bob_anc(small_config(10));
    const Alice_bob_result b = run_alice_bob_anc(small_config(10));
    EXPECT_EQ(a.metrics.packets_delivered, b.metrics.packets_delivered);
    EXPECT_DOUBLE_EQ(a.metrics.airtime_symbols, b.metrics.airtime_symbols);
    EXPECT_DOUBLE_EQ(a.metrics.mean_ber(), b.metrics.mean_ber());
}

TEST(AliceBobSim, BothSidesDecode)
{
    Alice_bob_config config = small_config(11);
    config.exchanges = 10;
    const Alice_bob_result result = run_alice_bob_anc(config);
    EXPECT_GE(result.ber_at_alice.count(), 8u);
    EXPECT_GE(result.ber_at_bob.count(), 8u);
}

} // namespace
} // namespace anc::sim
