#include "channel/link.h"

#include <gtest/gtest.h>

#include "dsp/msk.h"
#include "util/bits.h"
#include "util/rng.h"

namespace anc::chan {
namespace {

TEST(Link, AppliesGainAndPhase)
{
    Link_params params;
    params.gain = 0.5;
    params.phase = 1.2;
    const Link_channel link{params};
    const dsp::Signal in{{1.0, 0.0}, {0.0, 2.0}};
    const dsp::Signal out = link.apply(in);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_NEAR(std::abs(out[0]), 0.5, 1e-12);
    EXPECT_NEAR(std::arg(out[0]), 1.2, 1e-12);
    EXPECT_NEAR(std::abs(out[1]), 1.0, 1e-12);
}

TEST(Link, AppliesDelay)
{
    Link_params params;
    params.delay = 3;
    const Link_channel link{params};
    const dsp::Signal in{{1.0, 0.0}};
    const dsp::Signal out = link.apply(in);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], (dsp::Sample{0.0, 0.0}));
    EXPECT_NEAR(out[3].real(), 1.0, 1e-12);
}

TEST(Link, PhaseDriftAccumulates)
{
    Link_params params;
    params.phase_drift = 0.01;
    const Link_channel link{params};
    const dsp::Signal in(100, dsp::Sample{1.0, 0.0});
    const dsp::Signal out = link.apply(in);
    EXPECT_NEAR(std::arg(out[99]), 0.99, 1e-9);
}

TEST(Link, MskSurvivesChannelDistortion)
{
    // The end-to-end claim of §5.3: any (gain, phase) channel is
    // transparent to differential demodulation.
    Pcg32 rng{311};
    const Bits bits = random_bits(256, rng);
    const dsp::Msk_modulator modulator{1.0, 0.3};
    const dsp::Msk_demodulator demodulator;
    Link_params params;
    params.gain = 0.08;
    params.phase = 2.9;
    params.delay = 0;
    const Link_channel link{params};
    const Bits out = demodulator.demodulate(link.apply(modulator.modulate(bits)));
    EXPECT_EQ(out, bits);
}

TEST(Link, MskToleratesSmallCfo)
{
    // A small carrier-frequency offset tilts every phase difference by the
    // same amount; MSK's +-pi/2 decision margins absorb it.
    Pcg32 rng{312};
    const Bits bits = random_bits(256, rng);
    const dsp::Msk_modulator modulator{1.0, 0.0};
    const dsp::Msk_demodulator demodulator;
    Link_params params;
    params.phase_drift = 0.05; // well under pi/2 per symbol
    const Link_channel link{params};
    EXPECT_EQ(demodulator.demodulate(link.apply(modulator.modulate(bits))), bits);
}

TEST(Link, PowerGain)
{
    Link_params params;
    params.gain = 0.5;
    const Link_channel link{params};
    EXPECT_DOUBLE_EQ(link.power_gain(), 0.25);
}

TEST(Link, NegativeGainRejected)
{
    Link_params params;
    params.gain = -1.0;
    EXPECT_THROW(Link_channel{params}, std::invalid_argument);
}

} // namespace
} // namespace anc::chan
