// Rayleigh block fading on the link channel: deterministic, counter-based
// per-block gains, block structure, and exact agreement between the
// value-returning and accumulate-into paths.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "channel/link.h"
#include "util/rng.h"

namespace anc::chan {
namespace {

dsp::Signal constant_signal(std::size_t size, dsp::Sample value = {1.0, 0.0})
{
    return dsp::Signal(size, value);
}

Link_params rayleigh_params(std::uint64_t fading_seed, std::size_t block)
{
    Link_params params;
    params.gain = 0.9;
    params.phase = 0.4;
    params.gain_model = Gain_model::rayleigh_block;
    params.coherence_block = block;
    params.fading_seed = fading_seed;
    return params;
}

TEST(LinkFading, DefaultModelIsFixed)
{
    EXPECT_EQ(Link_params{}.gain_model, Gain_model::fixed);
    // And the fixed path is exactly the historical formula.
    Link_params params;
    params.gain = 0.8;
    params.phase = 0.25;
    params.phase_drift = 0.001;
    const Link_channel channel{params};
    const dsp::Signal in = constant_signal(64, {0.5, -0.25});
    const dsp::Signal out = channel.apply(in);
    for (std::size_t n = 0; n < in.size(); ++n) {
        const dsp::Sample expected =
            in[n] * std::polar(0.8, 0.25 + 0.001 * static_cast<double>(n));
        EXPECT_EQ(out[n], expected);
    }
}

TEST(LinkFading, DeterministicAndCallOrderIndependent)
{
    const Link_channel channel{rayleigh_params(1234, 16)};
    const dsp::Signal in = constant_signal(100);

    const dsp::Signal first = channel.apply(in);
    const dsp::Signal again = channel.apply(in);
    ASSERT_EQ(first.size(), again.size());
    for (std::size_t n = 0; n < first.size(); ++n)
        EXPECT_EQ(first[n], again[n]); // exact: draws are counter-based

    // A block gain is a pure function of (fading_seed, epoch, block) —
    // probing out of order or from a fresh channel gives identical values.
    const Link_channel fresh{rayleigh_params(1234, 16)};
    EXPECT_EQ(channel.block_gain(0, 5), fresh.block_gain(0, 5));
    EXPECT_EQ(channel.block_gain(0, 0), fresh.block_gain(0, 0));
    EXPECT_EQ(channel.block_gain(9, 5), fresh.block_gain(9, 5));
}

TEST(LinkFading, EpochsGiveFreshFades)
{
    // The fading epoch (advanced per exchange by the sims through
    // Medium::set_fading_epoch) refreshes every block's fade, so
    // successive packets over one link see independent realizations.
    const Link_channel channel{rayleigh_params(1234, 16)};
    EXPECT_NE(channel.block_gain(0, 0), channel.block_gain(1, 0));
    EXPECT_NE(channel.block_gain(1, 0), channel.block_gain(2, 0));
    EXPECT_NE(channel.block_gain(0, 3), channel.block_gain(1, 3));

    const dsp::Signal in = constant_signal(64);
    const dsp::Signal epoch0 = channel.apply(in, 0);
    const dsp::Signal epoch1 = channel.apply(in, 1);
    EXPECT_NE(epoch0[0], epoch1[0]);
    // apply's default epoch is 0.
    EXPECT_EQ(channel.apply(in)[0], epoch0[0]);
}

TEST(LinkFading, BlockStructure)
{
    constexpr std::size_t block = 25;
    const Link_channel channel{rayleigh_params(77, block)};
    const dsp::Signal in = constant_signal(4 * block);
    const dsp::Signal out = channel.apply(in);

    // Undo the deterministic rotation; what remains is gain * h_k,
    // constant within each block.
    for (std::size_t n = 0; n < out.size(); ++n) {
        const dsp::Sample fade =
            out[n] / std::polar(0.9, 0.4); // phase_drift defaults to 0
        const dsp::Sample expected = channel.block_gain(0, n / block);
        EXPECT_NEAR(fade.real(), expected.real(), 1e-12);
        EXPECT_NEAR(fade.imag(), expected.imag(), 1e-12);
    }
    // And consecutive blocks really differ.
    EXPECT_NE(channel.block_gain(0, 0), channel.block_gain(0, 1));
    EXPECT_NE(channel.block_gain(0, 1), channel.block_gain(0, 2));
}

TEST(LinkFading, ZeroCoherenceBlockIsQuasiStatic)
{
    const Link_channel channel{rayleigh_params(5, 0)};
    const dsp::Signal in = constant_signal(200);
    const dsp::Signal out = channel.apply(in);
    const dsp::Sample h0 = channel.block_gain(0, 0);
    for (std::size_t n = 0; n < out.size(); ++n) {
        const dsp::Sample fade = out[n] / std::polar(0.9, 0.4);
        EXPECT_NEAR(fade.real(), h0.real(), 1e-12);
        EXPECT_NEAR(fade.imag(), h0.imag(), 1e-12);
    }
}

TEST(LinkFading, ApplyOntoMatchesApply)
{
    Link_params params = rayleigh_params(999, 32);
    params.delay = 7;
    params.phase_drift = 0.002;
    const Link_channel channel{params};

    Pcg32 rng{42};
    dsp::Signal in;
    for (int n = 0; n < 150; ++n)
        in.push_back({rng.next_double() - 0.5, rng.next_double() - 0.5});

    const dsp::Signal value = channel.apply(in, 3);
    dsp::Signal acc;
    channel.apply_onto(in, 0, acc, 3);
    ASSERT_EQ(acc.size(), value.size());
    for (std::size_t n = 0; n < acc.size(); ++n)
        EXPECT_EQ(acc[n], value[n]);
}

TEST(LinkFading, DistinctSeedsGiveIndependentFades)
{
    const Link_channel a{rayleigh_params(1, 16)};
    const Link_channel b{rayleigh_params(2, 16)};
    EXPECT_NE(a.block_gain(0, 0), b.block_gain(0, 0));
    EXPECT_NE(a.block_gain(0, 3), b.block_gain(0, 3));
}

TEST(LinkFading, MeanPowerGainIsGainSquared)
{
    // E[|h_k|^2] = 1, so the long-run power gain of a faded link is the
    // configured gain^2 — the "mean link gain" contract of the fading
    // scenarios.  10k blocks gives a ~1% standard error.
    const Link_channel channel{rayleigh_params(31337, 1)};
    double power = 0.0;
    constexpr int blocks = 10000;
    for (int k = 0; k < blocks; ++k)
        power += std::norm(channel.block_gain(0, static_cast<std::size_t>(k)));
    EXPECT_NEAR(power / blocks, 1.0, 0.05);
}

} // namespace
} // namespace anc::chan
