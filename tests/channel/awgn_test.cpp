#include "channel/awgn.h"

#include <gtest/gtest.h>

#include "dsp/energy_scan.h"
#include "util/db.h"
#include "util/rng.h"
#include "util/stats.h"

namespace anc::chan {
namespace {

TEST(Awgn, NoisePowerMatchesRequest)
{
    Awgn noise{0.25, Pcg32{301}};
    Running_stats energy;
    for (int i = 0; i < 200000; ++i)
        energy.add(std::norm(noise.sample()));
    EXPECT_NEAR(energy.mean(), 0.25, 0.005);
}

TEST(Awgn, ComponentsAreIndependentAndBalanced)
{
    Awgn noise{1.0, Pcg32{302}};
    Running_stats re;
    Running_stats im;
    double cross = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const dsp::Sample s = noise.sample();
        re.add(s.real());
        im.add(s.imag());
        cross += s.real() * s.imag();
    }
    EXPECT_NEAR(re.mean(), 0.0, 0.01);
    EXPECT_NEAR(im.mean(), 0.0, 0.01);
    EXPECT_NEAR(re.variance(), 0.5, 0.01);
    EXPECT_NEAR(im.variance(), 0.5, 0.01);
    EXPECT_NEAR(cross / n, 0.0, 0.01);
}

TEST(Awgn, ZeroPowerIsNoiseless)
{
    Awgn noise{0.0, Pcg32{303}};
    dsp::Signal signal(100, dsp::Sample{1.0, 1.0});
    const dsp::Signal out = noise.apply(signal);
    for (std::size_t i = 0; i < signal.size(); ++i)
        EXPECT_EQ(out[i], signal[i]);
}

TEST(Awgn, RealizesRequestedSnr)
{
    const double snr_db = 25.0;
    const double noise_power = noise_power_for_snr_db(snr_db, 1.0);
    dsp::Signal signal(50000, dsp::Sample{1.0, 0.0}); // unit power
    Awgn noise{noise_power, Pcg32{304}};
    const dsp::Signal received = noise.apply(signal);
    const double rx_power = dsp::mean_energy(received);
    // Received power = signal + noise power.
    EXPECT_NEAR(rx_power, 1.0 + noise_power, 0.01);
    EXPECT_NEAR(to_db(1.0 / noise_power), snr_db, 1e-9);
}

TEST(Awgn, NegativePowerRejected)
{
    EXPECT_THROW((Awgn{-1.0, Pcg32{305}}), std::invalid_argument);
}

TEST(Awgn, NoiseForSnrHelper)
{
    EXPECT_NEAR(noise_power_for_snr_db(0.0), 1.0, 1e-12);
    EXPECT_NEAR(noise_power_for_snr_db(10.0), 0.1, 1e-12);
    EXPECT_NEAR(noise_power_for_snr_db(20.0, 4.0), 0.04, 1e-12);
}

} // namespace
} // namespace anc::chan
