// The per-link AGC detection threshold (the promoted Medium-layer form
// of the old X_config snoop knob): storage on Link_params, query/set
// through the Medium, and the AGC derivation rule.

#include <gtest/gtest.h>

#include <cmath>

#include "channel/link.h"
#include "channel/medium.h"
#include "net/topology.h"

namespace anc::chan {
namespace {

TEST(DetectionThreshold, AbsentByDefaultAndQueryable)
{
    Medium medium{0.0, Pcg32{1}};
    Link_params params;
    params.gain = 0.5;
    medium.set_link(1, 2, params);
    EXPECT_FALSE(medium.detection_threshold_db(1, 2).has_value());
    EXPECT_FALSE(medium.detection_threshold_db(7, 8).has_value()); // no link

    medium.set_detection_threshold_db(1, 2, 9.0);
    ASSERT_TRUE(medium.detection_threshold_db(1, 2).has_value());
    EXPECT_DOUBLE_EQ(*medium.detection_threshold_db(1, 2), 9.0);

    medium.set_detection_threshold_db(1, 2, std::nullopt);
    EXPECT_FALSE(medium.detection_threshold_db(1, 2).has_value());

    EXPECT_THROW(medium.set_detection_threshold_db(7, 8, 5.0), std::out_of_range);
}

TEST(DetectionThreshold, SettingKeepsTheLinkOtherwiseIntact)
{
    Medium medium{0.0, Pcg32{1}};
    Link_params params;
    params.gain = 0.75;
    params.phase = 1.25;
    params.delay = 3;
    params.phase_drift = 0.002;
    medium.set_link(1, 2, params);
    medium.set_detection_threshold_db(1, 2, 8.5);
    const Link_params& after = medium.link(1, 2).params();
    EXPECT_DOUBLE_EQ(after.gain, 0.75);
    EXPECT_DOUBLE_EQ(after.phase, 1.25);
    EXPECT_EQ(after.delay, 3u);
    EXPECT_DOUBLE_EQ(after.phase_drift, 0.002);
    ASSERT_TRUE(after.detection_threshold_db.has_value());
    EXPECT_DOUBLE_EQ(*after.detection_threshold_db, 8.5);
}

TEST(DetectionThreshold, AgcRuleLowersByTheBudgetDeficit)
{
    // Unit gain keeps the base; gain 0.5 listens 20*log10(2) ~ 6.02 dB
    // lower (the X topology's overhear links round this to 9 dB).
    EXPECT_DOUBLE_EQ(agc_detection_threshold_db(15.0, 1.0), 15.0);
    EXPECT_NEAR(agc_detection_threshold_db(15.0, 0.5), 15.0 - 6.0206, 1e-3);
    EXPECT_NEAR(agc_detection_threshold_db(20.0, 0.25), 20.0 - 12.0412, 1e-3);
    EXPECT_THROW(agc_detection_threshold_db(15.0, 0.0), std::invalid_argument);
}

TEST(DetectionThreshold, InstallXStampsTheOverhearLinks)
{
    Medium medium{0.0, Pcg32{3}};
    net::X_nodes nodes;
    net::X_gains gains;
    Pcg32 rng{5, 5};
    net::install_x(medium, nodes, gains, rng);
    // The two snooping links carry the default 9 dB AGC threshold...
    ASSERT_TRUE(medium.detection_threshold_db(nodes.n1, nodes.n2).has_value());
    EXPECT_DOUBLE_EQ(*medium.detection_threshold_db(nodes.n1, nodes.n2), 9.0);
    ASSERT_TRUE(medium.detection_threshold_db(nodes.n3, nodes.n4).has_value());
    EXPECT_DOUBLE_EQ(*medium.detection_threshold_db(nodes.n3, nodes.n4), 9.0);
    // ...and nothing else does.
    EXPECT_FALSE(medium.detection_threshold_db(nodes.n1, nodes.n5).has_value());
    EXPECT_FALSE(medium.detection_threshold_db(nodes.n5, nodes.n2).has_value());
    EXPECT_FALSE(medium.detection_threshold_db(nodes.n3, nodes.n2).has_value());
}

} // namespace
} // namespace anc::chan
