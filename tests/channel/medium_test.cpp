#include "channel/medium.h"

#include <gtest/gtest.h>

#include "dsp/energy_scan.h"
#include "dsp/msk.h"
#include "util/bits.h"
#include "util/rng.h"

namespace anc::chan {
namespace {

Medium make_noiseless_medium()
{
    return Medium{0.0, Pcg32{321}};
}

TEST(Medium, SingleLinkDelivery)
{
    Medium medium = make_noiseless_medium();
    Link_params params;
    params.gain = 0.5;
    medium.set_link(1, 2, params);

    const dsp::Signal signal{dsp::Sample{2.0, 0.0}};
    const Transmission txs[] = {{1, signal, 0}};
    const dsp::Signal rx = medium.receive(2, txs);
    ASSERT_EQ(rx.size(), 1u);
    EXPECT_NEAR(rx[0].real(), 1.0, 1e-12);
}

TEST(Medium, OutOfRangeSenderIsSilent)
{
    Medium medium = make_noiseless_medium();
    // no link 1 -> 2
    const dsp::Signal signal{dsp::Sample{1.0, 0.0}};
    const Transmission txs[] = {{1, signal, 0}};
    const dsp::Signal rx = medium.receive(2, txs);
    for (const auto& s : rx)
        EXPECT_EQ(s, (dsp::Sample{0.0, 0.0}));
}

TEST(Medium, HalfDuplexSkipsOwnTransmission)
{
    Medium medium = make_noiseless_medium();
    medium.set_link(1, 1, {}); // even with a pathological self-link
    const dsp::Signal signal{dsp::Sample{1.0, 0.0}};
    const Transmission txs[] = {{1, signal, 0}};
    const dsp::Signal rx = medium.receive(1, txs);
    for (const auto& s : rx)
        EXPECT_EQ(s, (dsp::Sample{0.0, 0.0}));
}

TEST(Medium, ConcurrentTransmissionsAdd)
{
    // The paper's core physical fact: the channel *adds* interfering
    // signals (§1, §6).
    Medium medium = make_noiseless_medium();
    medium.set_link(1, 3, {});
    medium.set_link(2, 3, {});
    const dsp::Signal signal_a{dsp::Sample{1.0, 0.0}, dsp::Sample{1.0, 0.0}};
    const dsp::Signal signal_b{dsp::Sample{0.0, 1.0}, dsp::Sample{0.0, 1.0}};
    const Transmission txs[] = {{1, signal_a, 0}, {2, signal_b, 0}};
    const dsp::Signal rx = medium.receive(3, txs);
    ASSERT_EQ(rx.size(), 2u);
    EXPECT_NEAR(rx[0].real(), 1.0, 1e-12);
    EXPECT_NEAR(rx[0].imag(), 1.0, 1e-12);
}

TEST(Medium, StartOffsetsShiftSignals)
{
    Medium medium = make_noiseless_medium();
    medium.set_link(1, 3, {});
    medium.set_link(2, 3, {});
    const dsp::Signal signal_a{dsp::Sample{1.0, 0.0}};
    const dsp::Signal signal_b{dsp::Sample{0.0, 1.0}};
    const Transmission txs[] = {{1, signal_a, 0}, {2, signal_b, 2}};
    const dsp::Signal rx = medium.receive(3, txs);
    ASSERT_EQ(rx.size(), 3u);
    EXPECT_NEAR(rx[0].real(), 1.0, 1e-12);
    EXPECT_EQ(rx[1], (dsp::Sample{0.0, 0.0}));
    EXPECT_NEAR(rx[2].imag(), 1.0, 1e-12);
}

TEST(Medium, NoiseAddedAtReceiver)
{
    Medium medium{0.1, Pcg32{322}};
    medium.set_link(1, 2, {});
    const dsp::Signal signal(20000, dsp::Sample{1.0, 0.0});
    const Transmission txs[] = {{1, signal, 0}};
    const dsp::Signal rx = medium.receive(2, txs);
    EXPECT_NEAR(dsp::mean_energy(rx), 1.1, 0.02);
}

TEST(Medium, TrailingNoisePadding)
{
    Medium medium{0.1, Pcg32{323}};
    medium.set_link(1, 2, {});
    const dsp::Signal signal(10, dsp::Sample{1.0, 0.0});
    const Transmission txs[] = {{1, signal, 0}};
    const dsp::Signal rx = medium.receive(2, txs, 32);
    EXPECT_EQ(rx.size(), 42u);
}

TEST(Medium, MissingLinkThrowsOnQuery)
{
    Medium medium = make_noiseless_medium();
    EXPECT_THROW(medium.link(1, 2), std::out_of_range);
    medium.set_link(1, 2, {});
    EXPECT_NO_THROW(medium.link(1, 2));
    EXPECT_TRUE(medium.has_link(1, 2));
    EXPECT_FALSE(medium.has_link(2, 1));
}

TEST(Medium, InterferedMskStreamsDecodeAfterCancellation)
{
    // Noiseless sanity check of the full collision path at the sample
    // level: receive a collision, subtract one channel-distorted signal,
    // demodulate the other.
    Pcg32 rng{324};
    const Bits bits_a = random_bits(100, rng);
    const Bits bits_b = random_bits(100, rng);
    const dsp::Msk_modulator modulator{1.0, 0.0};

    Medium medium = make_noiseless_medium();
    Link_params link_a;
    link_a.gain = 0.9;
    link_a.phase = 0.7;
    Link_params link_b;
    link_b.gain = 0.6;
    link_b.phase = -1.1;
    medium.set_link(1, 3, link_a);
    medium.set_link(2, 3, link_b);

    const dsp::Signal signal_a = modulator.modulate(bits_a);
    const dsp::Signal signal_b = modulator.modulate(bits_b);
    const Transmission txs[] = {{1, signal_a, 0}, {2, signal_b, 0}};
    const dsp::Signal rx = medium.receive(3, txs);

    // Genie cancellation of A's contribution.
    const dsp::Signal a_at_rx = medium.link(1, 3).apply(signal_a);
    dsp::Signal residual = rx;
    for (std::size_t i = 0; i < a_at_rx.size(); ++i)
        residual[i] -= a_at_rx[i];

    const dsp::Msk_demodulator demodulator;
    EXPECT_EQ(demodulator.demodulate(residual), bits_b);
}

} // namespace
} // namespace anc::chan
