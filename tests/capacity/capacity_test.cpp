#include "capacity/capacity.h"

#include <gtest/gtest.h>

#include "util/db.h"

namespace anc::cap {
namespace {

TEST(Capacity, TraditionalFormula)
{
    // alpha * (log2(1+2s) + log2(1+s)) at s = 10, alpha = 1/8.
    const double expected = 0.125 * (std::log2(21.0) + std::log2(11.0));
    EXPECT_NEAR(traditional_upper_bound(10.0), expected, 1e-12);
}

TEST(Capacity, AncFormula)
{
    // 4 alpha * log2(1 + s^2/(3s+1)) at s = 10.
    const double expected = 0.5 * std::log2(1.0 + 100.0 / 31.0);
    EXPECT_NEAR(anc_lower_bound(10.0), expected, 1e-12);
}

TEST(Capacity, ZeroSnrIsZeroCapacity)
{
    EXPECT_DOUBLE_EQ(traditional_upper_bound(0.0), 0.0);
    EXPECT_DOUBLE_EQ(anc_lower_bound(0.0), 0.0);
}

TEST(Capacity, NegativeSnrRejected)
{
    EXPECT_THROW(traditional_upper_bound(-1.0), std::invalid_argument);
    EXPECT_THROW(anc_lower_bound(-1.0), std::invalid_argument);
}

TEST(Capacity, GainApproachesTwoAsymptotically)
{
    // Theorem 8.1: the ratio tends to 2 as SNR grows (the convergence is
    // logarithmic, so it is slow in dB).
    const double g40 = capacity_gain(from_db(40.0));
    const double g80 = capacity_gain(from_db(80.0));
    const double g160 = capacity_gain(from_db(160.0));
    EXPECT_LT(g40, g80);
    EXPECT_LT(g80, g160);
    EXPECT_LT(g160, 2.0); // approaches from below
    EXPECT_GT(g160, 1.90);
    EXPECT_GT(capacity_gain(from_db(400.0)), 1.96);
}

TEST(Capacity, TraditionalWinsAtLowSnr)
{
    // Fig. 7's low-SNR region (0-8 dB): amplified relay noise makes ANC
    // worse than routing.
    for (const double snr_db : {0.0, 2.0, 4.0, 6.0}) {
        const double snr = from_db(snr_db);
        EXPECT_LT(anc_lower_bound(snr), traditional_upper_bound(snr)) << snr_db << " dB";
    }
}

TEST(Capacity, AncWinsAtOperatingSnr)
{
    // WLAN operating points (20-40 dB, §8): ANC clearly ahead, and the
    // margin widens with SNR.
    for (const double snr_db : {20.0, 25.0, 30.0, 40.0}) {
        const double snr = from_db(snr_db);
        EXPECT_GT(anc_lower_bound(snr), 1.35 * traditional_upper_bound(snr))
            << snr_db << " dB";
    }
    EXPECT_GT(anc_lower_bound(from_db(40.0)), 1.6 * traditional_upper_bound(from_db(40.0)));
}

TEST(Capacity, CrossoverNearEightDb)
{
    const double crossover = crossover_snr_db();
    EXPECT_GT(crossover, 5.0);
    EXPECT_LT(crossover, 11.0);
}

TEST(Capacity, Fig7AbsoluteScale)
{
    // Spot values read off Fig. 7 (b/s/Hz): traditional ~2.2 and ANC ~3.4
    // at 25 dB; traditional ~4.4 and ANC ~8.3 at 55 dB.
    EXPECT_NEAR(traditional_upper_bound(from_db(25.0)), 2.2, 0.25);
    EXPECT_NEAR(anc_lower_bound(from_db(25.0)), 3.4, 0.3);
    EXPECT_NEAR(traditional_upper_bound(from_db(55.0)), 4.5, 0.3);
    EXPECT_NEAR(anc_lower_bound(from_db(55.0)), 8.3, 0.4);
}

TEST(Capacity, SweepShape)
{
    const auto points = sweep(0.0, 55.0, 5.0);
    ASSERT_EQ(points.size(), 12u);
    EXPECT_DOUBLE_EQ(points.front().snr_db, 0.0);
    EXPECT_DOUBLE_EQ(points.back().snr_db, 55.0);
    // Both curves are monotone increasing in SNR.
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GT(points[i].traditional, points[i - 1].traditional);
        EXPECT_GT(points[i].anc, points[i - 1].anc);
    }
    // The gain column matches the ratio.
    for (const auto& p : points) {
        if (p.traditional > 0.0) {
            EXPECT_NEAR(p.gain, p.anc / p.traditional, 1e-12);
        }
    }
}

TEST(Capacity, SweepRejectsBadStep)
{
    EXPECT_THROW(sweep(0.0, 10.0, 0.0), std::invalid_argument);
}

TEST(Capacity, RelayAmplificationMatchesAppendixC)
{
    // A = sqrt(P / (P h1^2 + P h2^2 + 1)).
    const double amp = relay_amplification(4.0, 0.5, 0.5);
    EXPECT_NEAR(amp, std::sqrt(4.0 / (4.0 * 0.25 + 4.0 * 0.25 + 1.0)), 1e-12);
}

TEST(Capacity, ReceiverSnrGrowsWithPower)
{
    const double low = anc_receiver_snr(1.0, 1.0, 1.0, 1.0);
    const double high = anc_receiver_snr(100.0, 1.0, 1.0, 1.0);
    EXPECT_GT(high, low);
}

TEST(Capacity, SumRateSymmetricChannelsMatchTheorem)
{
    // With unit gains the Appendix C sum rate must equal the Theorem 8.1
    // lower bound at the same SNR (alpha folding aside): check the SNR
    // expression SNR_rx = P^2 / (3P + 1) directly.
    const double p = 50.0;
    const double snr_rx = anc_receiver_snr(p, 1.0, 1.0, 1.0);
    EXPECT_NEAR(snr_rx, p * p / (3.0 * p + 1.0), 1e-9);
}

TEST(Capacity, AsymmetricChannelsPenalizeWeakSide)
{
    const double symmetric = anc_sum_rate(10.0, 1.0, 1.0, 1.0, 1.0);
    const double asymmetric = anc_sum_rate(10.0, 1.0, 0.3, 1.0, 0.3);
    EXPECT_GT(symmetric, asymmetric);
}

TEST(Capacity, CutsetBoundIsMinOfCuts)
{
    const Cutset_bound bound = routing_cutset_bound(100.0, 0.5, 1.0, 1.0);
    EXPECT_LE(bound.value(), bound.c1 + 1e-12);
    EXPECT_LE(bound.value(), bound.c2 + 1e-12);
    EXPECT_GT(bound.value(), 0.0);
}

TEST(Capacity, CutsetBoundGrowsWithPower)
{
    const double low = routing_cutset_bound(10.0, 0.5, 1.0, 1.0).value();
    const double high = routing_cutset_bound(1000.0, 0.5, 1.0, 1.0).value();
    EXPECT_GT(high, low);
}

TEST(Capacity, CutsetBetterRelayHelps)
{
    // Stronger relay links raise the bound (until the direct link caps it).
    const double weak = routing_cutset_bound(100.0, 0.3, 0.5, 0.5).value();
    const double strong = routing_cutset_bound(100.0, 0.3, 1.5, 1.5).value();
    EXPECT_GE(strong, weak);
}

TEST(Capacity, CutsetDominatesSimpleTimeSharing)
{
    // The cut-set bound is an *upper* bound: it must be at least the
    // trivially achievable two-hop time-shared rate
    // 1/4 min(log(1+h_sr^2 P), log(1+h_rd^2 P)).
    const double p = 316.0;
    const double h_sr = 0.9;
    const double h_rd = 0.9;
    const double trivial =
        0.25 * std::min(std::log2(1.0 + h_sr * h_sr * p), std::log2(1.0 + h_rd * h_rd * p));
    const double bound = routing_cutset_bound(p, 0.05, h_sr, h_rd).value();
    EXPECT_GE(bound, trivial * 0.99);
}

} // namespace
} // namespace anc::cap
