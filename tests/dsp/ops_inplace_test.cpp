// Golden-equivalence tests for the allocation-free kernels: every
// in-place / into-buffer kernel must be *bit-identical* to its
// value-returning counterpart (and to the historical scalar arithmetic)
// on random signals.  Comparisons use exact ==, not tolerances — the
// engine's determinism contract (ENGINE.md) leans on this.

#include "dsp/msk.h"
#include "dsp/ops.h"

#include <cmath>
#include <gtest/gtest.h>

#include "channel/medium.h"
#include "core/relay.h"
#include "dsp/energy_scan.h"
#include "net/topology.h"
#include "util/rng.h"

namespace anc::dsp {
namespace {

Signal make_test_signal(std::size_t n, std::uint64_t seed)
{
    Pcg32 rng{seed};
    Signal signal;
    signal.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        signal.push_back({rng.next_gaussian(), rng.next_gaussian()});
    return signal;
}

void expect_identical(const Signal& a, const Signal& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        // Exact comparison: the kernels must not change a single bit.
        EXPECT_EQ(a[i].real(), b[i].real()) << "sample " << i;
        EXPECT_EQ(a[i].imag(), b[i].imag()) << "sample " << i;
    }
}

TEST(OpsInPlace, ScaleMatchesScaled)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const Signal signal = make_test_signal(257, seed);
        const Signal expected = scaled(signal, 1.7354);
        Signal in_place{signal};
        scale_in_place(in_place, 1.7354);
        expect_identical(expected, in_place);
        // And against the historical per-sample arithmetic.
        for (std::size_t i = 0; i < signal.size(); ++i)
            EXPECT_EQ(in_place[i], signal[i] * 1.7354);
    }
}

TEST(OpsInPlace, RotateMatchesRotated)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const Signal signal = make_test_signal(193, seed);
        const double phase = 0.31 * static_cast<double>(seed);
        const Signal expected = rotated(signal, phase);
        Signal in_place{signal};
        rotate_in_place(in_place, phase);
        expect_identical(expected, in_place);
        const Sample rotor = std::polar(1.0, phase);
        for (std::size_t i = 0; i < signal.size(); ++i)
            EXPECT_EQ(in_place[i], signal[i] * rotor);
    }
}

TEST(OpsInPlace, ConjugateMatchesConjugated)
{
    const Signal signal = make_test_signal(100, 7);
    const Signal expected = conjugated(signal);
    Signal in_place{signal};
    conjugate_in_place(in_place);
    expect_identical(expected, in_place);
    for (std::size_t i = 0; i < signal.size(); ++i)
        EXPECT_EQ(in_place[i], std::conj(signal[i]));
}

TEST(OpsInPlace, TimeReverseMatchesTimeReversed)
{
    const Signal signal = make_test_signal(131, 8);
    const Signal expected = time_reversed(signal);
    Signal out;
    time_reverse_into(signal, out);
    expect_identical(expected, out);
}

TEST(OpsInPlace, SliceIntoMatchesSlice)
{
    const Signal signal = make_test_signal(64, 9);
    for (const auto& [begin, end] :
         {std::pair<std::size_t, std::size_t>{3, 40}, {0, 64}, {60, 200}, {10, 5}}) {
        const Signal expected = slice(signal, begin, end);
        Signal out;
        slice_into(signal, begin, end, out);
        expect_identical(expected, out);
        const Signal_view view = slice_view(signal, begin, end);
        ASSERT_EQ(view.size(), expected.size());
        for (std::size_t i = 0; i < view.size(); ++i)
            EXPECT_EQ(view[i], expected[i]);
    }
}

TEST(OpsInPlace, AddIntoMatchesAdded)
{
    const Signal a = make_test_signal(90, 10);
    const Signal b = make_test_signal(60, 11);
    const Signal expected = added(a, b);
    // Historical arithmetic: zero-extended sum.
    Signal reference(std::max(a.size(), b.size()), Sample{0.0, 0.0});
    for (std::size_t i = 0; i < a.size(); ++i)
        reference[i] += a[i];
    for (std::size_t i = 0; i < b.size(); ++i)
        reference[i] += b[i];
    expect_identical(reference, expected);

    Signal acc;
    add_into(acc, a);
    add_into(acc, b);
    expect_identical(reference, acc);
}

TEST(OpsInPlace, NormalizeInPlaceMatchesNormalizedToPower)
{
    for (std::uint64_t seed = 21; seed <= 24; ++seed) {
        const Signal signal = make_test_signal(333, seed);
        const Signal expected = normalized_to_power(signal, 2.0);
        Signal in_place{signal};
        const double measured = normalize_power_in_place(in_place, 2.0);
        expect_identical(expected, in_place);
        EXPECT_EQ(measured, power(signal));
        // Historical arithmetic: power then scaled.
        const Signal reference = scaled(signal, std::sqrt(2.0 / power(signal)));
        expect_identical(reference, in_place);
    }
}

TEST(OpsInPlace, NormalizeZeroSignalUntouched)
{
    Signal zeros(9, Sample{0.0, 0.0});
    EXPECT_EQ(normalize_power_in_place(zeros, 3.0), 0.0);
    for (const Sample& s : zeros)
        EXPECT_EQ(s, (Sample{0.0, 0.0}));
}

TEST(OpsInPlace, ModulateIntoMatchesModulate)
{
    Pcg32 rng{31};
    const Bits bits = random_bits(500, rng);
    // Initial phases beyond (-pi, pi] exercise the first-step wrap.
    for (const double phase : {0.0, 1.2, 3.9, 6.28, -2.5}) {
        const Msk_modulator modulator{0.8, phase};
        const Signal expected = modulator.modulate(bits);
        Signal out;
        modulator.modulate_into(bits, out);
        expect_identical(expected, out);
    }
}

TEST(OpsInPlace, DemodulateIntoMatchesDemodulateAndArgRule)
{
    const Msk_demodulator demodulator;
    for (std::uint64_t seed = 41; seed <= 45; ++seed) {
        // Random complex samples — far harsher than clean MSK, and the
        // exact domain where the sign-structure rule must still agree
        // with the historical arg-based rule.
        const Signal signal = make_test_signal(777, seed);
        const Bits bits = demodulator.demodulate(signal);
        Bits into;
        demodulator.demodulate_into(signal, into);
        ASSERT_EQ(bits, into);
        ASSERT_EQ(bits.size(), signal.size() - 1);
        for (std::size_t n = 0; n + 1 < signal.size(); ++n) {
            const Sample ratio = signal[n + 1] * std::conj(signal[n]);
            EXPECT_EQ(bits[n], std::arg(ratio) >= 0.0 ? 1 : 0) << "transition " << n;
        }
    }
}

TEST(OpsInPlace, DemodulateZeroImaginaryEdgeCases)
{
    // Transitions engineered to hit im == +-0.0 in the ratio.
    const Msk_demodulator demodulator;
    const Signal signal{{1.0, 0.0}, {2.0, 0.0}, {-1.0, 0.0}, {3.0, 0.0}};
    const Bits bits = demodulator.demodulate(signal);
    Bits into;
    demodulator.demodulate_into(signal, into);
    ASSERT_EQ(bits, into);
    for (std::size_t n = 0; n + 1 < signal.size(); ++n) {
        const Sample ratio = signal[n + 1] * std::conj(signal[n]);
        EXPECT_EQ(bits[n], std::arg(ratio) >= 0.0 ? 1 : 0);
    }
}

TEST(OpsInPlace, PhaseDifferencesIntoMatches)
{
    Pcg32 rng{51};
    const Bits bits = random_bits(64, rng);
    const std::vector<double> expected = phase_differences_for_bits(bits);
    std::vector<double> out;
    phase_differences_for_bits_into(bits, out);
    EXPECT_EQ(expected, out);
}

TEST(OpsInPlace, SampleEnergiesIntoMatchesAndNormRule)
{
    const Signal signal = make_test_signal(222, 61);
    const std::vector<double> expected = sample_energies(signal);
    std::vector<double> out;
    sample_energies_into(signal, out);
    ASSERT_EQ(expected, out);
    for (std::size_t i = 0; i < signal.size(); ++i)
        EXPECT_EQ(out[i], std::norm(signal[i]));
}

TEST(OpsInPlace, ScanEnergyIntoMatchesScanEnergy)
{
    const Signal signal = make_test_signal(400, 62);
    const Energy_scan expected = scan_energy(signal, 32);
    std::vector<double> scratch;
    std::vector<double> mean;
    std::vector<double> variance;
    scan_energy_into(signal, 32, scratch, mean, variance);
    EXPECT_EQ(expected.window_mean, mean);
    EXPECT_EQ(expected.window_variance, variance);
}

TEST(OpsInPlace, MediumReceiveIntoMatchesReceive)
{
    // Two identically seeded media must produce bit-identical streams
    // through the value and the into-buffer paths.
    const auto build = [] {
        chan::Medium medium{0.05, Pcg32{77, 3}};
        net::Alice_bob_nodes nodes;
        net::Alice_bob_gains gains;
        Pcg32 link_rng{78, 4};
        install_alice_bob(medium, nodes, gains, link_rng);
        return medium;
    };
    chan::Medium value_medium = build();
    chan::Medium into_medium = build();

    const Signal signal_a = make_test_signal(300, 63);
    const Signal signal_b = make_test_signal(280, 64);
    net::Alice_bob_nodes nodes;
    const chan::Transmission txs[] = {{nodes.alice, signal_a, 17},
                                      {nodes.bob, signal_b, 40}};
    const Signal expected = value_medium.receive(nodes.router, txs, 64);
    Signal out;
    into_medium.receive_into(nodes.router, txs, 64, out);
    expect_identical(expected, out);
}

TEST(OpsInPlace, AmplifyAndForwardIntoMatches)
{
    // A burst with enough power to trip the detector, noise around it.
    Pcg32 rng{91};
    Signal received(600, Sample{0.0, 0.0});
    for (auto& s : received)
        s = {0.01 * rng.next_gaussian(), 0.01 * rng.next_gaussian()};
    const Signal burst = make_test_signal(400, 92);
    for (std::size_t i = 0; i < burst.size(); ++i)
        received[100 + i] += burst[i];

    const auto expected = amplify_and_forward(received, 1e-4, 1.0);
    ASSERT_TRUE(expected.has_value());
    Signal out;
    ASSERT_TRUE(amplify_and_forward_into(received, 1e-4, 1.0, out));
    expect_identical(*expected, out);
}

TEST(OpsInPlace, DelayedReservesWithoutChangingValues)
{
    const Signal signal = make_test_signal(40, 95);
    const Signal out = delayed(signal, 13);
    ASSERT_EQ(out.size(), 53u);
    for (std::size_t i = 0; i < 13; ++i)
        EXPECT_EQ(out[i], (Sample{0.0, 0.0}));
    for (std::size_t i = 0; i < signal.size(); ++i)
        EXPECT_EQ(out[13 + i], signal[i]);
}

} // namespace
} // namespace anc::dsp
