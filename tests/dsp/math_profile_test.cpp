// The Math_profile seam at the DSP layer: the exact arm must be the
// historical code verbatim, the fast arm must stay within tight absolute
// bounds of it, and the enum round-trips through its string form (the
// emitters' profile tag).

#include "dsp/math_profile.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "dsp/dpsk.h"
#include "dsp/msk.h"
#include "dsp/ops.h"
#include "util/rng.h"

namespace anc::dsp {
namespace {

Bits random_bits_for(std::size_t count, std::uint64_t seed)
{
    Pcg32 rng{seed, 5};
    Bits bits;
    bits.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        bits.push_back(rng.next_bernoulli(0.5) ? 1 : 0);
    return bits;
}

TEST(MathProfile, StringRoundTrip)
{
    EXPECT_STREQ(to_string(Math_profile::exact), "exact");
    EXPECT_STREQ(to_string(Math_profile::fast), "fast");
    EXPECT_STREQ(to_string(Math_profile::simd), "simd");
    EXPECT_EQ(math_profile_from_string("exact"), Math_profile::exact);
    EXPECT_EQ(math_profile_from_string("fast"), Math_profile::fast);
    EXPECT_EQ(math_profile_from_string("simd"), Math_profile::simd);
    EXPECT_THROW(math_profile_from_string("fastest"), std::invalid_argument);
    EXPECT_THROW(math_profile_from_string("avx2"), std::invalid_argument);
}

TEST(MathProfile, SimdScalarHelpersEqualFastHelpers)
{
    // Single-sample call sites under Math_profile::simd use the scalar
    // fast kernels (there is no batch to put on lanes), so the dispatch
    // helpers must agree with the fast profile bit for bit.
    Pcg32 rng{77, 4};
    for (int i = 0; i < 5000; ++i) {
        const double y = (rng.next_double() - 0.5) * 10.0;
        const double x = (rng.next_double() - 0.5) * 10.0;
        EXPECT_EQ(profile_atan2(Math_profile::simd, y, x),
                  profile_atan2(Math_profile::fast, y, x));
        const double angle = (rng.next_double() - 0.5) * 20.0;
        EXPECT_EQ(profile_polar(Math_profile::simd, 2.0, angle),
                  profile_polar(Math_profile::fast, 2.0, angle));
        EXPECT_EQ(profile_arg(Math_profile::simd, Sample{x, y}),
                  profile_arg(Math_profile::fast, Sample{x, y}));
    }
}

TEST(MathProfile, SimdPolarFillMatchesFastByteForByte)
{
    // The batched polar fill under simd routes through the lane kernels;
    // its bit-compatibility contract with the fast loop is the seam the
    // DQPSK modulator rides.
    Pcg32 rng{79, 5};
    std::vector<double> phases(1537); // odd length: lanes + scalar tail
    for (double& p : phases)
        p = (rng.next_double() - 0.5) * 12.0;
    Signal fast;
    polar_into(phases, 1.7, Math_profile::fast, fast);
    Signal simd;
    polar_into(phases, 1.7, Math_profile::simd, simd);
    ASSERT_EQ(simd.size(), fast.size());
    for (std::size_t i = 0; i < fast.size(); ++i)
        EXPECT_EQ(simd[i], fast[i]) << i;
}

TEST(MathProfile, DispatchHelpersAgreeAcrossProfiles)
{
    Pcg32 rng{31, 9};
    for (int i = 0; i < 20000; ++i) {
        const double y = (rng.next_double() - 0.5) * 10.0;
        const double x = (rng.next_double() - 0.5) * 10.0;
        EXPECT_EQ(profile_atan2(Math_profile::exact, y, x), std::atan2(y, x));
        EXPECT_NEAR(profile_atan2(Math_profile::fast, y, x), std::atan2(y, x), 2e-11);
        const double angle = (rng.next_double() - 0.5) * 20.0;
        const Sample exact = profile_polar(Math_profile::exact, 2.0, angle);
        const Sample fast = profile_polar(Math_profile::fast, 2.0, angle);
        EXPECT_EQ(exact, std::polar(2.0, angle));
        EXPECT_NEAR(std::abs(fast - exact), 0.0, 1e-13);
    }
}

TEST(MathProfile, FastMskModulationStaysOnTheExactEnvelope)
{
    const Bits bits = random_bits_for(4096, 0xfeed);
    const Msk_modulator exact{0.8, 1.234, Math_profile::exact};
    const Msk_modulator fast{0.8, 1.234, Math_profile::fast};
    const Signal a = exact.modulate(bits);
    const Signal b = fast.modulate(bits);
    ASSERT_EQ(a.size(), b.size());
    double max_dev = 0.0;
    const double envelope = std::norm(b[0]);
    EXPECT_NEAR(envelope, 0.8 * 0.8, 1e-15);
    for (std::size_t n = 0; n < a.size(); ++n) {
        max_dev = std::max(max_dev, std::abs(a[n] - b[n]));
        // The +-i rotation is lossless (a component swap/negate), so the
        // fast envelope is *exactly* constant across the whole frame.
        EXPECT_EQ(std::norm(b[n]), envelope);
    }
    // The fast rotations are exact; the deviation is the exact path's
    // own accumulated wrap/step rounding plus the initial sincos ULP.
    EXPECT_LT(max_dev, 1e-12);
}

TEST(MathProfile, ExactPolarFillMatchesStdPolarByteForByte)
{
    Pcg32 rng{8, 2};
    std::vector<double> phases;
    for (int i = 0; i < 1000; ++i)
        phases.push_back((rng.next_double() - 0.5) * 12.0);
    Signal exact;
    polar_into(phases, 1.7, Math_profile::exact, exact);
    ASSERT_EQ(exact.size(), phases.size());
    for (std::size_t i = 0; i < phases.size(); ++i)
        EXPECT_EQ(exact[i], std::polar(1.7, phases[i]));
    Signal fast;
    polar_into(phases, 1.7, Math_profile::fast, fast);
    for (std::size_t i = 0; i < phases.size(); ++i)
        EXPECT_NEAR(std::abs(fast[i] - exact[i]), 0.0, 1e-13);
}

TEST(MathProfile, FastDqpskRoundTripsThroughFastDemodulation)
{
    const Bits bits = random_bits_for(2048, 0xd0d0);
    const Dqpsk_modulator modulator{1.0, 0.4, Math_profile::fast};
    const Dqpsk_demodulator demodulator{Math_profile::fast};
    EXPECT_EQ(demodulator.demodulate(modulator.modulate(bits)), bits);
}

TEST(MathProfile, FastMskDemodulatesItsOwnModulation)
{
    const Bits bits = random_bits_for(4096, 0xbead);
    const Msk_modulator modulator{1.0, 0.9, Math_profile::fast};
    const Msk_demodulator demodulator;
    EXPECT_EQ(demodulator.demodulate(modulator.modulate(bits)), bits);
}

} // namespace
} // namespace anc::dsp
