#include "dsp/sampling.h"

#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "dsp/msk.h"
#include "dsp/ops.h"
#include "util/bits.h"
#include "util/rng.h"

namespace anc::dsp {
namespace {

TEST(Sampling, UpsampleRepeatsSamples)
{
    const Signal in{{1.0, 0.0}, {0.0, 2.0}};
    const Signal out = upsampled(in, 3);
    ASSERT_EQ(out.size(), 6u);
    EXPECT_EQ(out[0], in[0]);
    EXPECT_EQ(out[2], in[0]);
    EXPECT_EQ(out[3], in[1]);
}

TEST(Sampling, DecimateInvertsUpsample)
{
    Pcg32 rng{161};
    Signal in;
    for (int i = 0; i < 50; ++i)
        in.push_back({rng.next_gaussian(), rng.next_gaussian()});
    for (const std::size_t factor : {2u, 4u, 8u}) {
        const Signal up = upsampled(in, factor);
        for (std::size_t phase = 0; phase < factor; ++phase) {
            const Signal down = decimated(up, factor, phase);
            ASSERT_EQ(down.size(), in.size());
            for (std::size_t i = 0; i < in.size(); ++i)
                EXPECT_EQ(down[i], in[i]);
        }
    }
}

TEST(Sampling, BoxcarAveragesWindow)
{
    const Signal in{{4.0, 0.0}, {0.0, 0.0}, {2.0, 0.0}};
    const Signal out = boxcar_filtered(in, 2);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_NEAR(out[0].real(), 4.0, 1e-12); // warm-up: single sample
    EXPECT_NEAR(out[1].real(), 2.0, 1e-12);
    EXPECT_NEAR(out[2].real(), 1.0, 1e-12);
}

TEST(Sampling, BoxcarSuppressesNoise)
{
    Pcg32 rng{162};
    Signal constant(4000, Sample{1.0, 0.0});
    chan::Awgn noise{0.5, rng};
    noise.add_in_place(constant);
    const Signal filtered = boxcar_filtered(constant, 8);
    // Residual noise power should drop by ~the filter length.
    double residual = 0.0;
    for (std::size_t i = 8; i < filtered.size(); ++i)
        residual += std::norm(filtered[i] - Sample{1.0, 0.0});
    residual /= static_cast<double>(filtered.size() - 8);
    EXPECT_LT(residual, 0.5 / 8.0 * 1.5);
}

TEST(Sampling, ZeroFactorRejected)
{
    EXPECT_THROW(upsampled(Signal{}, 0), std::invalid_argument);
    EXPECT_THROW(decimated(Signal{}, 0, 0), std::invalid_argument);
    EXPECT_THROW(boxcar_filtered(Signal{}, 0), std::invalid_argument);
    EXPECT_THROW(recover_symbol_phase(Signal{}, 0), std::invalid_argument);
}

TEST(Sampling, LatticeFitDiscriminatesMsk)
{
    Pcg32 rng{163};
    const Bits bits = random_bits(400, rng);
    const Msk_modulator modulator{1.0, 0.4};
    const Signal symbol_spaced = modulator.modulate(bits);
    EXPECT_LT(msk_lattice_fit(symbol_spaced), 0.01);

    // A random-phase stream fits badly.
    Signal junk;
    for (int i = 0; i < 400; ++i)
        junk.push_back(std::polar(1.0, rng.next_double() * 6.283));
    EXPECT_GT(msk_lattice_fit(junk), 0.4);
}

TEST(Sampling, ClockRecoveryFindsDelayPhase)
{
    // TX at 4 samples/symbol, channel adds a sub-symbol delay of d
    // samples; the recovered decimation phase must compensate it.
    Pcg32 rng{164};
    const Bits bits = random_bits(300, rng);
    const Msk_modulator modulator{1.0, 0.9};
    const std::size_t factor = 4;
    const Signal tx = upsampled(modulator.modulate(bits), factor);

    for (std::size_t delay = 0; delay < factor; ++delay) {
        Signal rx = dsp::delayed(tx, delay);
        chan::Awgn noise{chan::noise_power_for_snr_db(25.0), rng.fork(delay + 1)};
        noise.add_in_place(rx);
        const Signal filtered = boxcar_filtered(rx, factor);
        const std::size_t phase = recover_symbol_phase(filtered, factor);
        // The matched filter peaks at the *last* sample of each held
        // symbol: expected phase = (factor - 1 + delay) mod factor.
        EXPECT_EQ(phase, (factor - 1 + delay) % factor) << "delay " << delay;
    }
}

TEST(Sampling, EndToEndOversampledRoundTrip)
{
    // The full receive chain: oversample -> delay -> noise -> matched
    // filter -> clock recovery -> decimate -> demodulate.
    Pcg32 rng{165};
    const Bits bits = random_bits(600, rng);
    const Msk_modulator modulator{1.0, 1.8};
    const Msk_demodulator demodulator;
    const std::size_t factor = 8;

    Signal rx = dsp::delayed(upsampled(modulator.modulate(bits), factor), 5);
    chan::Awgn noise{chan::noise_power_for_snr_db(20.0), rng.fork(9)};
    noise.add_in_place(rx);

    const Signal filtered = boxcar_filtered(rx, factor);
    const std::size_t phase = recover_symbol_phase(filtered, factor);
    const Signal symbol_spaced = decimated(filtered, factor, phase);
    const Bits decoded = demodulator.demodulate(symbol_spaced);

    // The decimated stream may carry one warm-up sample before the first
    // full-symbol average (a real receiver locates data via the pilot);
    // align by the best small offset.
    double best_ber = 1.0;
    for (std::size_t offset = 0; offset <= 2 && offset < decoded.size(); ++offset) {
        const std::span<const std::uint8_t> tail{decoded.data() + offset,
                                                 decoded.size() - offset};
        const std::size_t common = std::min(tail.size(), bits.size());
        best_ber = std::min(best_ber,
                            bit_error_rate(tail.first(common),
                                           std::span<const std::uint8_t>{bits}.first(common)));
    }
    EXPECT_LT(best_ber, 0.01);
}

} // namespace
} // namespace anc::dsp
