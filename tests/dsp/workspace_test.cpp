#include "dsp/workspace.h"

#include <thread>
#include <utility>

#include <gtest/gtest.h>

namespace anc::dsp {
namespace {

TEST(Workspace, LeaseHandsOutClearedBuffersAndRecycles)
{
    Workspace workspace;
    void* first_data = nullptr;
    {
        auto lease = workspace.signal();
        EXPECT_TRUE(lease->empty());
        lease->resize(1000);
        first_data = lease->data();
    }
    EXPECT_EQ(workspace.buffers_created(), 1u);
    {
        // Same buffer back: cleared, capacity (and storage) retained.
        auto lease = workspace.signal();
        EXPECT_TRUE(lease->empty());
        EXPECT_GE(lease->capacity(), 1000u);
        lease->resize(800);
        EXPECT_EQ(static_cast<void*>(lease->data()), first_data);
    }
    EXPECT_EQ(workspace.buffers_created(), 1u);
    EXPECT_EQ(workspace.leases_served(), 2u);
}

TEST(Workspace, ConcurrentLeasesGetDistinctBuffers)
{
    Workspace workspace;
    auto a = workspace.signal();
    auto b = workspace.signal();
    EXPECT_NE(a.operator->(), b.operator->());
    a->resize(10);
    b->resize(20);
    EXPECT_NE(static_cast<const void*>(a->data()), static_cast<const void*>(b->data()));
    EXPECT_EQ(workspace.buffers_created(), 2u);
}

TEST(Workspace, PoolStopsGrowingOnceWarm)
{
    Workspace workspace;
    for (int round = 0; round < 50; ++round) {
        auto signal = workspace.signal();
        auto bits = workspace.bits();
        auto reals = workspace.reals();
        signal->resize(512);
        bits->resize(512);
        reals->resize(512);
    }
    // One buffer per type: the steady state allocates nothing new.
    EXPECT_EQ(workspace.buffers_created(), 3u);
    EXPECT_EQ(workspace.leases_served(), 150u);
}

TEST(Workspace, MoveTransfersOwnership)
{
    Workspace workspace;
    {
        auto a = workspace.signal();
        a->resize(5);
        auto b = std::move(a);
        EXPECT_EQ(b->size(), 5u);
        auto c = workspace.signal(); // a's release must not have fired twice
        EXPECT_NE(b.operator->(), c.operator->());
    }
    EXPECT_EQ(workspace.buffers_created(), 2u);
}

TEST(Workspace, CurrentFallsBackPerThreadAndBindOverrides)
{
    Workspace& fallback = Workspace::current();
    EXPECT_EQ(&fallback, &Workspace::current()); // stable per thread

    Workspace mine;
    {
        const Workspace::Bind bind{mine};
        EXPECT_EQ(&Workspace::current(), &mine);
        Workspace nested;
        {
            const Workspace::Bind inner{nested};
            EXPECT_EQ(&Workspace::current(), &nested);
        }
        EXPECT_EQ(&Workspace::current(), &mine);
    }
    EXPECT_EQ(&Workspace::current(), &fallback);

    // Another thread sees its own fallback, never this thread's binding.
    const Workspace::Bind bind{mine};
    Workspace* seen = nullptr;
    std::thread worker{[&] { seen = &Workspace::current(); }};
    worker.join();
    EXPECT_NE(seen, nullptr);
    EXPECT_NE(seen, &mine);
}

} // namespace
} // namespace anc::dsp
