#include "dsp/energy_scan.h"

#include <gtest/gtest.h>

#include "dsp/msk.h"
#include "dsp/ops.h"
#include "util/bits.h"
#include "util/rng.h"

namespace anc::dsp {
namespace {

TEST(EnergyScan, SampleEnergies)
{
    const Signal signal{{3.0, 4.0}, {0.0, 2.0}};
    const auto energies = sample_energies(signal);
    ASSERT_EQ(energies.size(), 2u);
    EXPECT_DOUBLE_EQ(energies[0], 25.0);
    EXPECT_DOUBLE_EQ(energies[1], 4.0);
}

TEST(EnergyScan, MeanEnergy)
{
    const Signal signal{{1.0, 0.0}, {0.0, 3.0}};
    EXPECT_DOUBLE_EQ(mean_energy(signal), 5.0);
    EXPECT_DOUBLE_EQ(mean_energy(Signal{}), 0.0);
}

TEST(EnergyScan, ConstantEnvelopeHasZeroVariance)
{
    Pcg32 rng{121};
    const Bits bits = random_bits(200, rng);
    const Msk_modulator modulator{2.0, 0.1};
    const Signal signal = modulator.modulate(bits);
    const Energy_scan scan = scan_energy(signal, 32);
    for (std::size_t i = 0; i < scan.window_mean.size(); ++i) {
        EXPECT_NEAR(scan.window_mean[i], 4.0, 1e-9);
        EXPECT_NEAR(scan.window_variance[i], 0.0, 1e-9);
    }
}

TEST(EnergyScan, InterferedSignalHasLargeVariance)
{
    // Two equal-amplitude MSK signals: |y|^2 swings between 0 and (2A)^2;
    // the windowed variance must be far from zero (the §7.1 detector
    // insight).
    Pcg32 rng{122};
    const Bits bits_a = random_bits(300, rng);
    const Bits bits_b = random_bits(300, rng);
    const Msk_modulator modulator{1.0, 0.0};
    const Signal mix = added(modulator.modulate(bits_a),
                             rotated(modulator.modulate(bits_b), 1.1));
    const Energy_scan scan = scan_energy(mix, 64);
    double max_variance = 0.0;
    for (const double v : scan.window_variance)
        max_variance = std::max(max_variance, v);
    // Theoretical variance of |y|^2 for A=B=1 is E[(2cos d)^2]^2-ish ~ 2.
    EXPECT_GT(max_variance, 0.5);
}

TEST(EnergyScan, WindowCountAndOrder)
{
    Signal signal(10, Sample{1.0, 0.0});
    const Energy_scan scan = scan_energy(signal, 4);
    EXPECT_EQ(scan.window_mean.size(), 7u);
    EXPECT_EQ(scan.window_variance.size(), 7u);
    EXPECT_EQ(scan.window, 4u);
}

TEST(EnergyScan, ShortSignalYieldsEmptyScan)
{
    Signal signal(3, Sample{1.0, 0.0});
    const Energy_scan scan = scan_energy(signal, 8);
    EXPECT_TRUE(scan.window_mean.empty());
}

TEST(EnergyScan, ZeroWindowThrows)
{
    EXPECT_THROW(scan_energy(Signal{}, 0), std::invalid_argument);
}

TEST(EnergyScan, DetectsEnergyStep)
{
    // Silence then a strong signal: window means must rise at the step.
    Signal signal(64, Sample{0.0, 0.0});
    for (int i = 0; i < 64; ++i)
        signal.push_back(Sample{2.0, 0.0});
    const Energy_scan scan = scan_energy(signal, 16);
    EXPECT_NEAR(scan.window_mean.front(), 0.0, 1e-12);
    EXPECT_NEAR(scan.window_mean.back(), 4.0, 1e-12);
}

/// Reference transcription of the historical fused scan loop (the exact
/// FP operation sequence every profile's results were captured under).
/// The production kernel was rewritten into a split, auto-vectorizable
/// form; this pins the rewrite to the original byte for byte.
Energy_scan reference_scan(Signal_view signal, std::size_t window)
{
    Energy_scan scan;
    scan.window = window;
    if (signal.size() < window)
        return scan;
    const std::vector<double> e = sample_energies(signal);
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < window; ++i) {
        sum += e[i];
        sum_sq += e[i] * e[i];
    }
    const auto w = static_cast<double>(window);
    for (std::size_t start = 0;; ++start) {
        const double mean = sum / w;
        double variance = sum_sq / w - mean * mean;
        if (variance < 0.0)
            variance = 0.0;
        scan.window_mean.push_back(mean);
        scan.window_variance.push_back(variance);
        if (start + window >= e.size())
            break;
        sum += e[start + window] - e[start];
        sum_sq += e[start + window] * e[start + window] - e[start] * e[start];
    }
    return scan;
}

TEST(EnergyScan, RewrittenScanIsByteIdenticalToHistoricalLoop)
{
    Pcg32 rng{777, 13};
    for (const std::size_t count : {std::size_t{1}, std::size_t{5}, std::size_t{16},
                                    std::size_t{64}, std::size_t{257},
                                    std::size_t{1024}}) {
        Signal signal;
        signal.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            signal.push_back(Sample{rng.next_gaussian(), rng.next_gaussian()});
        for (const std::size_t window : {std::size_t{1}, std::size_t{2},
                                         std::size_t{7}, std::size_t{16}, count}) {
            const Energy_scan expected = reference_scan(signal, window);
            const Energy_scan actual = scan_energy(signal, window);
            // operator== on vector<double> is exact — any reassociation
            // or changed rounding in the rewrite fails here.
            EXPECT_EQ(actual.window_mean, expected.window_mean)
                << count << " samples, window " << window;
            EXPECT_EQ(actual.window_variance, expected.window_variance)
                << count << " samples, window " << window;
        }
    }
}

} // namespace
} // namespace anc::dsp
