#include "dsp/energy_scan.h"

#include <gtest/gtest.h>

#include "dsp/msk.h"
#include "dsp/ops.h"
#include "util/bits.h"
#include "util/rng.h"

namespace anc::dsp {
namespace {

TEST(EnergyScan, SampleEnergies)
{
    const Signal signal{{3.0, 4.0}, {0.0, 2.0}};
    const auto energies = sample_energies(signal);
    ASSERT_EQ(energies.size(), 2u);
    EXPECT_DOUBLE_EQ(energies[0], 25.0);
    EXPECT_DOUBLE_EQ(energies[1], 4.0);
}

TEST(EnergyScan, MeanEnergy)
{
    const Signal signal{{1.0, 0.0}, {0.0, 3.0}};
    EXPECT_DOUBLE_EQ(mean_energy(signal), 5.0);
    EXPECT_DOUBLE_EQ(mean_energy(Signal{}), 0.0);
}

TEST(EnergyScan, ConstantEnvelopeHasZeroVariance)
{
    Pcg32 rng{121};
    const Bits bits = random_bits(200, rng);
    const Msk_modulator modulator{2.0, 0.1};
    const Signal signal = modulator.modulate(bits);
    const Energy_scan scan = scan_energy(signal, 32);
    for (std::size_t i = 0; i < scan.window_mean.size(); ++i) {
        EXPECT_NEAR(scan.window_mean[i], 4.0, 1e-9);
        EXPECT_NEAR(scan.window_variance[i], 0.0, 1e-9);
    }
}

TEST(EnergyScan, InterferedSignalHasLargeVariance)
{
    // Two equal-amplitude MSK signals: |y|^2 swings between 0 and (2A)^2;
    // the windowed variance must be far from zero (the §7.1 detector
    // insight).
    Pcg32 rng{122};
    const Bits bits_a = random_bits(300, rng);
    const Bits bits_b = random_bits(300, rng);
    const Msk_modulator modulator{1.0, 0.0};
    const Signal mix = added(modulator.modulate(bits_a),
                             rotated(modulator.modulate(bits_b), 1.1));
    const Energy_scan scan = scan_energy(mix, 64);
    double max_variance = 0.0;
    for (const double v : scan.window_variance)
        max_variance = std::max(max_variance, v);
    // Theoretical variance of |y|^2 for A=B=1 is E[(2cos d)^2]^2-ish ~ 2.
    EXPECT_GT(max_variance, 0.5);
}

TEST(EnergyScan, WindowCountAndOrder)
{
    Signal signal(10, Sample{1.0, 0.0});
    const Energy_scan scan = scan_energy(signal, 4);
    EXPECT_EQ(scan.window_mean.size(), 7u);
    EXPECT_EQ(scan.window_variance.size(), 7u);
    EXPECT_EQ(scan.window, 4u);
}

TEST(EnergyScan, ShortSignalYieldsEmptyScan)
{
    Signal signal(3, Sample{1.0, 0.0});
    const Energy_scan scan = scan_energy(signal, 8);
    EXPECT_TRUE(scan.window_mean.empty());
}

TEST(EnergyScan, ZeroWindowThrows)
{
    EXPECT_THROW(scan_energy(Signal{}, 0), std::invalid_argument);
}

TEST(EnergyScan, DetectsEnergyStep)
{
    // Silence then a strong signal: window means must rise at the step.
    Signal signal(64, Sample{0.0, 0.0});
    for (int i = 0; i < 64; ++i)
        signal.push_back(Sample{2.0, 0.0});
    const Energy_scan scan = scan_energy(signal, 16);
    EXPECT_NEAR(scan.window_mean.front(), 0.0, 1e-12);
    EXPECT_NEAR(scan.window_mean.back(), 4.0, 1e-12);
}

} // namespace
} // namespace anc::dsp
