#include "dsp/msk.h"

#include <gtest/gtest.h>

#include <numbers>

#include "dsp/ops.h"
#include "util/bits.h"
#include "util/phase.h"
#include "util/rng.h"

namespace anc::dsp {
namespace {

constexpr double pi = std::numbers::pi;

TEST(Msk, PhaseStepMapping)
{
    EXPECT_DOUBLE_EQ(msk_phase_step(1), pi / 2.0);
    EXPECT_DOUBLE_EQ(msk_phase_step(0), -pi / 2.0);
}

TEST(Msk, PaperWalkthroughExample)
{
    // §5.2: data 10 -> phases 0, pi/2, 0 (1 advances, 0 retreats).
    const Bits bits{1, 0};
    const Msk_modulator modulator{2.5, 0.0};
    const Signal signal = modulator.modulate(bits);
    ASSERT_EQ(signal.size(), 3u);
    EXPECT_NEAR(std::arg(signal[0]), 0.0, 1e-12);
    EXPECT_NEAR(std::arg(signal[1]), pi / 2.0, 1e-12);
    EXPECT_NEAR(std::arg(signal[2]), 0.0, 1e-12);
    for (const Sample& s : signal)
        EXPECT_NEAR(std::abs(s), 2.5, 1e-12); // constant envelope
}

TEST(Msk, RoundTripCleanChannel)
{
    Pcg32 rng{101};
    const Bits bits = random_bits(512, rng);
    const Msk_modulator modulator{1.0, 0.7};
    const Msk_demodulator demodulator;
    EXPECT_EQ(demodulator.demodulate(modulator.modulate(bits)), bits);
}

TEST(Msk, RoundTripIsChannelInvariant)
{
    // Demodulation must not care about attenuation h or phase shift gamma
    // (Eq. 1) — the core robustness claim of §5.3.
    Pcg32 rng{102};
    const Bits bits = random_bits(256, rng);
    const Msk_modulator modulator{1.0, 0.0};
    const Msk_demodulator demodulator;
    Signal signal = modulator.modulate(bits);
    signal = scaled(signal, 0.037);   // strong attenuation
    signal = rotated(signal, 2.1);    // arbitrary phase shift
    EXPECT_EQ(demodulator.demodulate(signal), bits);
}

TEST(Msk, SamplesPerBitIsOnePlusOne)
{
    const Msk_modulator modulator;
    EXPECT_EQ(modulator.modulate(Bits{}).size(), 1u);
    EXPECT_EQ(modulator.modulate(Bits{1, 0, 1}).size(), 4u);
}

TEST(Msk, PhaseDifferencesForBits)
{
    const Bits bits{1, 1, 0, 1, 0, 0};
    const auto diffs = phase_differences_for_bits(bits);
    ASSERT_EQ(diffs.size(), bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i)
        EXPECT_DOUBLE_EQ(diffs[i], bits[i] ? pi / 2.0 : -pi / 2.0);
}

TEST(Msk, SoftOutputMatchesHardDecisions)
{
    Pcg32 rng{103};
    const Bits bits = random_bits(64, rng);
    const Msk_modulator modulator{1.0, 1.3};
    const Msk_demodulator demodulator;
    const Signal signal = modulator.modulate(bits);
    const auto diffs = demodulator.phase_differences(signal);
    ASSERT_EQ(diffs.size(), bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        EXPECT_NEAR(diffs[i], bits[i] ? pi / 2.0 : -pi / 2.0, 1e-9);
    }
}

TEST(Msk, DemodulateShortSignals)
{
    const Msk_demodulator demodulator;
    EXPECT_TRUE(demodulator.demodulate(Signal{}).empty());
    EXPECT_TRUE(demodulator.demodulate(Signal{Sample{1.0, 0.0}}).empty());
}

TEST(Msk, TimeReversedStreamDemodulatesToReversedBits)
{
    // The foundation of backward decoding (§7.4): reverse + conjugate
    // yields the bit sequence in reverse order.
    Pcg32 rng{104};
    const Bits bits = random_bits(128, rng);
    const Msk_modulator modulator{1.0, 0.4};
    const Msk_demodulator demodulator;
    const Signal reversed_signal = time_reversed(modulator.modulate(bits));
    EXPECT_EQ(demodulator.demodulate(reversed_signal), mirrored(bits));
}

TEST(Msk, InitialPhaseDoesNotAffectBits)
{
    Pcg32 rng{105};
    const Bits bits = random_bits(64, rng);
    const Msk_demodulator demodulator;
    for (const double phase : {0.0, 0.5, 1.0, 2.0, 3.0}) {
        const Msk_modulator modulator{1.0, phase};
        EXPECT_EQ(demodulator.demodulate(modulator.modulate(bits)), bits);
    }
}

} // namespace
} // namespace anc::dsp
