#include "dsp/scrambler.h"

#include <gtest/gtest.h>

#include "util/bits.h"
#include "util/rng.h"

namespace anc::dsp {
namespace {

TEST(Scrambler, SelfInverse)
{
    Pcg32 rng{111};
    const Bits data = random_bits(1000, rng);
    const Scrambler scrambler{0x1234};
    EXPECT_EQ(scrambler.apply(scrambler.apply(data)), data);
}

TEST(Scrambler, WhitensConstantInput)
{
    // The whole point (§6.2): even an all-zero payload must look random on
    // the air so that E[cos(theta - phi)] ~ 0.
    const Bits zeros(4096, 0);
    const Scrambler scrambler;
    const Bits whitened = scrambler.apply(zeros);
    std::size_t ones = 0;
    for (const auto b : whitened)
        ones += b;
    const double balance = static_cast<double>(ones) / static_cast<double>(whitened.size());
    EXPECT_NEAR(balance, 0.5, 0.05);
}

TEST(Scrambler, BreaksRuns)
{
    const Bits ones_in(1024, 1);
    const Scrambler scrambler;
    const Bits whitened = scrambler.apply(ones_in);
    std::size_t longest_run = 0;
    std::size_t run = 0;
    for (std::size_t i = 0; i < whitened.size(); ++i) {
        run = (i > 0 && whitened[i] == whitened[i - 1]) ? run + 1 : 1;
        longest_run = std::max(longest_run, run);
    }
    EXPECT_LT(longest_run, 20u);
}

TEST(Scrambler, DifferentSeedsDifferentKeystreams)
{
    const Bits zeros(256, 0);
    const Scrambler a{0x0001};
    const Scrambler b{0x8000};
    EXPECT_NE(a.apply(zeros), b.apply(zeros));
}

TEST(Scrambler, DeterministicAcrossCalls)
{
    Pcg32 rng{112};
    const Bits data = random_bits(128, rng);
    const Scrambler scrambler{0x4242};
    EXPECT_EQ(scrambler.apply(data), scrambler.apply(data));
}

TEST(Scrambler, ZeroSeedRejected)
{
    EXPECT_THROW(Scrambler{0}, std::invalid_argument);
}

TEST(Scrambler, EmptyInput)
{
    const Scrambler scrambler;
    EXPECT_TRUE(scrambler.apply(Bits{}).empty());
}

} // namespace
} // namespace anc::dsp
