#include "dsp/dpsk.h"

#include <gtest/gtest.h>

#include <numbers>

#include "channel/awgn.h"
#include "dsp/ops.h"
#include "util/bits.h"
#include "util/rng.h"

namespace anc::dsp {
namespace {

constexpr double pi = std::numbers::pi;

TEST(Dqpsk, SymbolBitMappingRoundTrip)
{
    for (std::uint8_t b0 = 0; b0 < 2; ++b0) {
        for (std::uint8_t b1 = 0; b1 < 2; ++b1) {
            const std::size_t symbol = dqpsk_symbol_for_bits(b0, b1);
            const auto [r0, r1] = dqpsk_bits_for_symbol(symbol);
            EXPECT_EQ(r0, b0);
            EXPECT_EQ(r1, b1);
        }
    }
}

TEST(Dqpsk, StepsAreGrayCoded)
{
    // Adjacent constellation steps differ in exactly one bit: +pi/4 and
    // +3pi/4 are neighbours, etc.
    const auto hamming = [](std::size_t s, std::size_t t) {
        const auto [a0, a1] = dqpsk_bits_for_symbol(s);
        const auto [b0, b1] = dqpsk_bits_for_symbol(t);
        return (a0 != b0) + (a1 != b1);
    };
    EXPECT_EQ(hamming(0, 1), 1); // +pi/4 vs +3pi/4
    EXPECT_EQ(hamming(1, 2), 1); // +3pi/4 vs -3pi/4
    EXPECT_EQ(hamming(2, 3), 1); // -3pi/4 vs -pi/4
    EXPECT_EQ(hamming(3, 0), 1); // -pi/4 vs +pi/4
}

TEST(Dqpsk, NearestSymbol)
{
    EXPECT_EQ(dqpsk_nearest_symbol(pi / 4.0), 0u);
    EXPECT_EQ(dqpsk_nearest_symbol(3.0 * pi / 4.0), 1u);
    EXPECT_EQ(dqpsk_nearest_symbol(-3.0 * pi / 4.0), 2u);
    EXPECT_EQ(dqpsk_nearest_symbol(-pi / 4.0), 3u);
    // Slightly off-lattice values snap to the nearest step.
    EXPECT_EQ(dqpsk_nearest_symbol(pi / 4.0 + 0.3), 0u);
    EXPECT_EQ(dqpsk_nearest_symbol(pi / 2.0 + 0.05), 1u);
}

TEST(Dqpsk, RoundTripCleanChannel)
{
    Pcg32 rng{151};
    const Bits bits = random_bits(512, rng);
    const Dqpsk_modulator modulator{1.0, 0.8};
    const Dqpsk_demodulator demodulator;
    EXPECT_EQ(demodulator.demodulate(modulator.modulate(bits)), bits);
}

TEST(Dqpsk, TwoBitsPerSample)
{
    const Dqpsk_modulator modulator;
    const Bits bits{0, 0, 1, 1, 1, 0};
    EXPECT_EQ(modulator.modulate(bits).size(), 4u); // 3 symbols + reference
}

TEST(Dqpsk, OddBitCountRejected)
{
    const Dqpsk_modulator modulator;
    EXPECT_THROW(modulator.modulate(Bits{1, 0, 1}), std::invalid_argument);
}

TEST(Dqpsk, ChannelInvariance)
{
    Pcg32 rng{152};
    const Bits bits = random_bits(256, rng);
    const Dqpsk_modulator modulator;
    const Dqpsk_demodulator demodulator;
    Signal signal = modulator.modulate(bits);
    signal = scaled(signal, 0.05);
    signal = rotated(signal, 2.7);
    EXPECT_EQ(demodulator.demodulate(signal), bits);
}

TEST(Dqpsk, ConstantEnvelope)
{
    Pcg32 rng{153};
    const Bits bits = random_bits(128, rng);
    const Dqpsk_modulator modulator{1.7, 0.0};
    for (const Sample& s : modulator.modulate(bits))
        EXPECT_NEAR(std::abs(s), 1.7, 1e-12);
}

TEST(Dqpsk, SurvivesModerateNoise)
{
    // DQPSK has pi/4 decision margins (vs MSK's pi/2), so it needs a few
    // dB more SNR; at 25 dB it should still be almost error-free.
    Pcg32 rng{154};
    const Bits bits = random_bits(2000, rng);
    const Dqpsk_modulator modulator;
    const Dqpsk_demodulator demodulator;
    Signal signal = modulator.modulate(bits);
    chan::Awgn noise{chan::noise_power_for_snr_db(25.0), rng.fork(1)};
    noise.add_in_place(signal);
    EXPECT_LT(bit_error_rate(demodulator.demodulate(signal), bits), 0.01);
}

TEST(Dqpsk, PhaseStepsForBitsMatchModulator)
{
    Pcg32 rng{155};
    const Bits bits = random_bits(64, rng);
    const auto steps = dqpsk_phase_steps_for_bits(bits);
    const Dqpsk_modulator modulator{1.0, 0.2};
    const Signal signal = modulator.modulate(bits);
    ASSERT_EQ(steps.size(), signal.size() - 1);
    for (std::size_t n = 0; n + 1 < signal.size(); ++n) {
        EXPECT_NEAR(std::arg(signal[n + 1] * std::conj(signal[n])), steps[n], 1e-9);
    }
}

TEST(Dqpsk, TimeReversedDemodulatesToPerTransitionInverse)
{
    // Reversal+conjugation preserves phase-difference *signs*, so a
    // reversed DQPSK stream demodulates to the per-transition steps in
    // reverse order — the property backward decoding relies on.
    Pcg32 rng{156};
    const Bits bits = random_bits(100, rng);
    const Dqpsk_modulator modulator;
    const Signal reversed_signal = time_reversed(modulator.modulate(bits));
    const auto forward_steps = dqpsk_phase_steps_for_bits(bits);
    for (std::size_t n = 0; n + 1 < reversed_signal.size(); ++n) {
        const double diff =
            std::arg(reversed_signal[n + 1] * std::conj(reversed_signal[n]));
        EXPECT_NEAR(diff, forward_steps[forward_steps.size() - 1 - n], 1e-9);
    }
}

} // namespace
} // namespace anc::dsp
