#include "dsp/ops.h"

#include <gtest/gtest.h>

#include "dsp/energy_scan.h"
#include "util/rng.h"

namespace anc::dsp {
namespace {

Signal make_test_signal(std::size_t n, std::uint64_t seed)
{
    Pcg32 rng{seed};
    Signal signal;
    signal.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        signal.push_back({rng.next_gaussian(), rng.next_gaussian()});
    return signal;
}

TEST(Ops, ScaledMultipliesAmplitude)
{
    const Signal signal{{1.0, 2.0}, {-3.0, 0.5}};
    const Signal out = scaled(signal, 2.0);
    EXPECT_DOUBLE_EQ(out[0].real(), 2.0);
    EXPECT_DOUBLE_EQ(out[0].imag(), 4.0);
    EXPECT_DOUBLE_EQ(out[1].real(), -6.0);
}

TEST(Ops, RotatedPreservesMagnitude)
{
    const Signal signal = make_test_signal(50, 1);
    const Signal out = rotated(signal, 1.234);
    for (std::size_t i = 0; i < signal.size(); ++i) {
        EXPECT_NEAR(std::abs(out[i]), std::abs(signal[i]), 1e-12);
        EXPECT_NEAR(std::arg(out[i] * std::conj(signal[i])), 1.234, 1e-9);
    }
}

TEST(Ops, DelayedPrependsZeros)
{
    const Signal signal{{1.0, 0.0}};
    const Signal out = delayed(signal, 3);
    ASSERT_EQ(out.size(), 4u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(out[i], (Sample{0.0, 0.0}));
    EXPECT_EQ(out[3], (Sample{1.0, 0.0}));
}

TEST(Ops, AddedZeroExtends)
{
    const Signal a{{1.0, 0.0}, {2.0, 0.0}};
    const Signal b{{0.5, 0.5}};
    const Signal out = added(a, b);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], (Sample{1.5, 0.5}));
    EXPECT_EQ(out[1], (Sample{2.0, 0.0}));
}

TEST(Ops, AccumulateGrowsAndAdds)
{
    Signal acc;
    const Signal a{{1.0, 0.0}, {1.0, 0.0}};
    accumulate(acc, a, 2);
    ASSERT_EQ(acc.size(), 4u);
    EXPECT_EQ(acc[0], (Sample{0.0, 0.0}));
    EXPECT_EQ(acc[2], (Sample{1.0, 0.0}));
    accumulate(acc, a, 3);
    EXPECT_EQ(acc[3], (Sample{2.0, 0.0}));
    ASSERT_EQ(acc.size(), 5u);
}

TEST(Ops, ReversedAndConjugated)
{
    const Signal signal{{1.0, 2.0}, {3.0, -1.0}};
    const Signal rev = reversed(signal);
    EXPECT_EQ(rev[0], (Sample{3.0, -1.0}));
    const Signal conj = conjugated(signal);
    EXPECT_EQ(conj[0], (Sample{1.0, -2.0}));
    const Signal tr = time_reversed(signal);
    EXPECT_EQ(tr[0], (Sample{3.0, 1.0}));
    EXPECT_EQ(tr[1], (Sample{1.0, -2.0}));
}

TEST(Ops, TimeReversedIsInvolution)
{
    const Signal signal = make_test_signal(33, 2);
    const Signal twice = time_reversed(time_reversed(signal));
    ASSERT_EQ(twice.size(), signal.size());
    for (std::size_t i = 0; i < signal.size(); ++i) {
        EXPECT_NEAR(twice[i].real(), signal[i].real(), 1e-12);
        EXPECT_NEAR(twice[i].imag(), signal[i].imag(), 1e-12);
    }
}

TEST(Ops, SliceClampsBounds)
{
    const Signal signal = make_test_signal(10, 3);
    EXPECT_EQ(slice(signal, 2, 5).size(), 3u);
    EXPECT_EQ(slice(signal, 8, 100).size(), 2u);
    EXPECT_EQ(slice(signal, 100, 200).size(), 0u);
    EXPECT_EQ(slice(signal, 5, 2).size(), 0u);
}

TEST(Ops, NormalizedToPower)
{
    Signal signal = make_test_signal(1000, 4);
    const Signal out = normalized_to_power(signal, 2.5);
    EXPECT_NEAR(power(out), 2.5, 1e-9);
}

TEST(Ops, NormalizeZeroSignalIsNoop)
{
    Signal zeros(8, Sample{0.0, 0.0});
    const Signal out = normalized_to_power(zeros, 1.0);
    EXPECT_EQ(out.size(), zeros.size());
    EXPECT_DOUBLE_EQ(power(out), 0.0);
}

} // namespace
} // namespace anc::dsp
