// Figure 9: the Alice-Bob topology (Fig. 1), 40 runs.
//   (a) CDF of ANC's per-run throughput gain over traditional routing and
//       over COPE-style digital network coding;
//   (b) CDF of per-packet BER for ANC-decoded packets.
//
// Operating point: 22 dB SNR — inside the paper's 20-40 dB WLAN band, at
// the lower end so that the relay's amplified noise (the mechanism behind
// the paper's 2-4% BER) is visible above the decoder's own error floor.
//
// Runs on the sweep engine: one grid over the three schemes, executed
// across all cores (ANC_ENGINE_THREADS overrides; ANC_ENGINE_JSON /
// ANC_ENGINE_CSV emit machine-readable results).

#include <cstdio>

#include "bench_util.h"
#include "engine/engine.h"

int main()
{
    using namespace anc;
    using namespace anc::engine;
    bench::print_header("Figure 9", "Alice-Bob topology: throughput gains and BER");

    const std::size_t runs = bench::run_count();
    const std::size_t exchanges = bench::exchange_count();

    Sweep_grid grid;
    // exact by default; ANC_MATH_PROFILE=fast|both adds the fast profile
    // (profile-tagged rows; the CI fast-profile job uses this).
    grid.math_profiles = bench::math_profiles_from_env();
    grid.scenarios = {"alice_bob"};
    grid.schemes = {"traditional", "cope", "anc"};
    grid.snr_db = {22.0};
    grid.exchanges = {exchanges};
    grid.repetitions = runs;

    Executor_config exec;
    exec.base_seed = 1000;
    const Sweep_outcome outcome = run_grid(grid, exec);
    bench::print_engine_note(outcome.tasks.size(), exec);
    // Tables read the leading profile's points (unique per scheme);
    // the JSON/CSV artifacts keep every profile's rows.
    const std::vector<Point_summary> table_points =
        bench::points_for_profile(outcome.points, grid.math_profiles.front());

    const Point_summary& anc_point = summary_for(table_points, "alice_bob", "anc");
    const Cdf gain_over_traditional =
        paired_gain(outcome.tasks, table_points, "alice_bob", "anc", "traditional");
    const Cdf gain_over_cope =
        paired_gain(outcome.tasks, table_points, "alice_bob", "anc", "cope");
    const Cdf& packet_ber = anc_point.totals.packet_ber;
    const Cdf& overlaps = anc_point.run_mean_overlap;

    std::printf("(%zu runs x %zu packet pairs, payload 2048 bits, SNR 22 dB)\n\n",
                runs, exchanges);
    bench::print_cdf("Fig 9(a): ANC gain over traditional", gain_over_traditional);
    std::printf("\n");
    bench::print_cdf("Fig 9(a): ANC gain over COPE", gain_over_cope);
    std::printf("\n");
    bench::print_cdf("Fig 9(b): per-packet BER of ANC decodes", packet_ber);

    std::printf("\nPaper vs measured:\n");
    bench::print_compare("mean gain over traditional", 1.70, gain_over_traditional.mean());
    bench::print_compare("mean gain over COPE", 1.30, gain_over_cope.mean());
    bench::print_compare("most packets' BER below", 0.04, packet_ber.quantile(0.90));
    bench::print_compare("mean packet overlap", 0.80, overlaps.mean());
    return 0;
}
