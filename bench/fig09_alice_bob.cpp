// Figure 9: the Alice-Bob topology (Fig. 1), 40 runs.
//   (a) CDF of ANC's per-run throughput gain over traditional routing and
//       over COPE-style digital network coding;
//   (b) CDF of per-packet BER for ANC-decoded packets.
//
// Operating point: 22 dB SNR — inside the paper's 20-40 dB WLAN band, at
// the lower end so that the relay's amplified noise (the mechanism behind
// the paper's 2-4% BER) is visible above the decoder's own error floor.

#include <cstdio>

#include "bench_util.h"
#include "sim/alice_bob.h"

int main()
{
    using namespace anc;
    using namespace anc::sim;
    bench::print_header("Figure 9", "Alice-Bob topology: throughput gains and BER");

    const std::size_t runs = bench::run_count();
    const std::size_t exchanges = bench::exchange_count();

    Cdf gain_over_traditional;
    Cdf gain_over_cope;
    Cdf packet_ber;
    Cdf overlaps;

    for (std::size_t run = 0; run < runs; ++run) {
        Alice_bob_config config;
        config.snr_db = 22.0;
        config.exchanges = exchanges;
        config.seed = 1000 + run;
        const Alice_bob_result anc = run_alice_bob_anc(config);
        const Alice_bob_result traditional = run_alice_bob_traditional(config);
        const Alice_bob_result cope = run_alice_bob_cope(config);
        gain_over_traditional.add(gain(anc.metrics, traditional.metrics));
        gain_over_cope.add(gain(anc.metrics, cope.metrics));
        packet_ber.add_all(anc.metrics.packet_ber.sorted_samples());
        overlaps.add(anc.metrics.mean_overlap());
    }

    std::printf("(%zu runs x %zu packet pairs, payload 2048 bits, SNR 22 dB)\n\n",
                runs, exchanges);
    bench::print_cdf("Fig 9(a): ANC gain over traditional", gain_over_traditional);
    std::printf("\n");
    bench::print_cdf("Fig 9(a): ANC gain over COPE", gain_over_cope);
    std::printf("\n");
    bench::print_cdf("Fig 9(b): per-packet BER of ANC decodes", packet_ber);

    std::printf("\nPaper vs measured:\n");
    bench::print_compare("mean gain over traditional", 1.70, gain_over_traditional.mean());
    bench::print_compare("mean gain over COPE", 1.30, gain_over_cope.mean());
    bench::print_compare("most packets' BER below", 0.04, packet_ber.quantile(0.90));
    bench::print_compare("mean packet overlap", 0.80, overlaps.mean());
    return 0;
}
