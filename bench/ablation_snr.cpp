// Ablation: measured throughput gain vs SNR — the packet-level
// counterpart of Fig. 7's capacity story.
//
// Theory (Fig. 7) says amplify-and-forward loses to routing below ~8 dB
// because the relay amplifies its own noise.  A packet system falls off
// a cliff much earlier: once the post-relay SNR leaves the decoder's
// working range, ANC loses *packets* (pilot/header failures), not just
// rate.  This bench sweeps the operating SNR and reports where the
// practical system stops winning.
//
// Runs on the sweep engine: one grid over (topology x scheme x SNR),
// all cells in parallel.

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"

namespace {

using namespace anc;
using namespace anc::engine;

/// Mean per-run gain of anc over traditional at one grid point, or 0
/// when the baseline delivered nothing (at the bottom of the SNR range
/// whole runs can fail).
double mean_gain(const std::vector<Task_result>& tasks, const Point_key& anc_key)
{
    Point_key traditional_key = anc_key;
    traditional_key.scheme = "traditional";
    const Cdf gains =
        paired_gain(tasks, anc_key, traditional_key, Baseline_policy::skip_failed);
    return gains.empty() ? 0.0 : gains.mean();
}

const Point_summary& point_at(const std::vector<Point_summary>& points,
                              const std::string& scenario, const std::string& scheme,
                              double snr_db)
{
    for (const Point_summary& point : points) {
        if (point.key.scenario == scenario && point.key.scheme == scheme
            && point.key.snr_db == snr_db)
            return point;
    }
    throw std::out_of_range{"ablation_snr: missing grid point"};
}

} // namespace

int main()
{
    bench::print_header("Ablation", "measured ANC gain vs operating SNR");

    const std::size_t runs = bench::run_count(6);
    const std::size_t exchanges = bench::exchange_count();
    const std::vector<double> snrs{16.0, 18.0, 20.0, 22.0, 25.0, 30.0, 35.0};

    Sweep_grid grid;
    // exact by default; ANC_MATH_PROFILE=fast|both adds the fast profile
    // (profile-tagged rows; the CI fast-profile job uses this).
    grid.math_profiles = bench::math_profiles_from_env();
    grid.scenarios = {"alice_bob", "chain"};
    grid.schemes = {"anc", "traditional"};
    grid.snr_db = snrs;
    grid.exchanges = {exchanges};
    grid.repetitions = runs;

    Executor_config exec;
    exec.base_seed = 8000;
    const Sweep_outcome outcome = run_grid(grid, exec);
    bench::print_engine_note(outcome.tasks.size(), exec);

    std::printf("%8s %14s %12s %12s %14s %12s\n", "SNR(dB)", "AB gain", "AB deliv",
                "AB BER", "chain gain", "chain deliv");
    for (const double snr : snrs) {
        const Point_summary& ab = point_at(outcome.points, "alice_bob", "anc", snr);
        const Point_summary& chain = point_at(outcome.points, "chain", "anc", snr);
        std::printf("%8.0f %14.3f %12.2f %12.4f %14.3f %12.2f\n", snr,
                    mean_gain(outcome.tasks, ab.key), ab.delivery_rate.mean(),
                    ab.run_mean_ber.mean(), mean_gain(outcome.tasks, chain.key),
                    chain.delivery_rate.mean());
    }
    std::printf("\nAbove ~22 dB the gains sit at their asymptotes (Fig. 9/12); below\n"
                "~18 dB the Alice-Bob path collapses first — its effective SNR is cut\n"
                "by the relay's amplified noise, exactly the Fig. 7 mechanism, while\n"
                "the chain (which decodes at the collision point) survives longer.\n");
    return 0;
}
