// Ablation: measured throughput gain vs SNR — the packet-level
// counterpart of Fig. 7's capacity story.
//
// Theory (Fig. 7) says amplify-and-forward loses to routing below ~8 dB
// because the relay amplifies its own noise.  A packet system falls off
// a cliff much earlier: once the post-relay SNR leaves the decoder's
// working range, ANC loses *packets* (pilot/header failures), not just
// rate.  This bench sweeps the operating SNR and reports where the
// practical system stops winning.

#include <cstdio>

#include "bench_util.h"
#include "sim/alice_bob.h"
#include "sim/chain.h"

int main()
{
    using namespace anc;
    using namespace anc::sim;
    bench::print_header("Ablation", "measured ANC gain vs operating SNR");

    const std::size_t runs = bench::run_count(6);
    const std::size_t exchanges = bench::exchange_count();

    std::printf("%8s %14s %12s %12s %14s %12s\n", "SNR(dB)", "AB gain", "AB deliv",
                "AB BER", "chain gain", "chain deliv");
    for (const double snr : {16.0, 18.0, 20.0, 22.0, 25.0, 30.0, 35.0}) {
        Cdf ab_gain, ab_deliv, ab_ber, ch_gain, ch_deliv;
        for (std::size_t run = 0; run < runs; ++run) {
            Alice_bob_config ab;
            ab.snr_db = snr;
            ab.exchanges = exchanges;
            ab.seed = 8000 + run;
            const auto anc_r = run_alice_bob_anc(ab);
            const auto trad_r = run_alice_bob_traditional(ab);
            if (trad_r.metrics.throughput() > 0.0)
                ab_gain.add(gain(anc_r.metrics, trad_r.metrics));
            ab_deliv.add(anc_r.metrics.delivery_rate());
            ab_ber.add(anc_r.metrics.mean_ber());

            Chain_config ch;
            ch.snr_db = snr;
            ch.packets = exchanges;
            ch.seed = 8000 + run;
            const auto chain_anc = run_chain_anc(ch);
            const auto chain_trad = run_chain_traditional(ch);
            if (chain_trad.metrics.throughput() > 0.0)
                ch_gain.add(gain(chain_anc.metrics, chain_trad.metrics));
            ch_deliv.add(chain_anc.metrics.delivery_rate());
        }
        std::printf("%8.0f %14.3f %12.2f %12.4f %14.3f %12.2f\n", snr,
                    ab_gain.empty() ? 0.0 : ab_gain.mean(), ab_deliv.mean(), ab_ber.mean(),
                    ch_gain.empty() ? 0.0 : ch_gain.mean(), ch_deliv.mean());
    }
    std::printf("\nAbove ~22 dB the gains sit at their asymptotes (Fig. 9/12); below\n"
                "~18 dB the Alice-Bob path collapses first — its effective SNR is cut\n"
                "by the relay's amplified noise, exactly the Fig. 7 mechanism, while\n"
                "the chain (which decodes at the collision point) survives longer.\n");
    return 0;
}
