// Figure 12: the chain topology (Fig. 2) with one unidirectional flow.
//   (a) CDF of ANC's per-run throughput gain over traditional routing
//       (COPE does not apply to unidirectional traffic);
//   (b) CDF of BER at node N2, which decodes the collision directly —
//       no amplify-and-forward, hence lower BER than Alice-Bob.
//
// Runs on the sweep engine (see fig09 for the engine knobs).

#include <cstdio>

#include "bench_util.h"
#include "engine/engine.h"

int main()
{
    using namespace anc;
    using namespace anc::engine;
    bench::print_header("Figure 12", "chain topology: unidirectional flow");

    const std::size_t runs = bench::run_count();
    const std::size_t packets = bench::exchange_count();

    Sweep_grid grid;
    // exact by default; ANC_MATH_PROFILE=fast|both adds the fast profile
    // (profile-tagged rows; the CI fast-profile job uses this).
    grid.math_profiles = bench::math_profiles_from_env();
    grid.scenarios = {"chain"};
    grid.snr_db = {22.0};
    grid.exchanges = {packets};
    grid.repetitions = runs;

    Executor_config exec;
    exec.base_seed = 3000;
    const Sweep_outcome outcome = run_grid(grid, exec);
    bench::print_engine_note(outcome.tasks.size(), exec);
    // Tables read the leading profile's points (unique per scheme);
    // the JSON/CSV artifacts keep every profile's rows.
    const std::vector<Point_summary> table_points =
        bench::points_for_profile(outcome.points, grid.math_profiles.front());

    const Point_summary& anc_point = summary_for(table_points, "chain", "anc");
    const Cdf gain_over_traditional =
        paired_gain(outcome.tasks, table_points, "chain", "anc", "traditional");
    const Cdf& ber_at_n2 = anc_point.series.at("ber_at_n2");

    std::printf("(%zu runs x %zu packets, payload 2048 bits, SNR 22 dB)\n\n", runs,
                packets);
    bench::print_cdf("Fig 12(a): ANC gain over traditional", gain_over_traditional);
    std::printf("\n");
    bench::print_cdf("Fig 12(b): BER of interference decodes at N2", ber_at_n2);

    std::printf("\nPaper vs measured:\n");
    bench::print_compare("mean gain over traditional", 1.36, gain_over_traditional.mean());
    bench::print_compare("mean BER at N2 (vs ~4%% on Alice-Bob)", 0.010, ber_at_n2.mean());
    return 0;
}
