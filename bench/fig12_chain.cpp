// Figure 12: the chain topology (Fig. 2) with one unidirectional flow.
//   (a) CDF of ANC's per-run throughput gain over traditional routing
//       (COPE does not apply to unidirectional traffic);
//   (b) CDF of BER at node N2, which decodes the collision directly —
//       no amplify-and-forward, hence lower BER than Alice-Bob.

#include <cstdio>

#include "bench_util.h"
#include "sim/chain.h"

int main()
{
    using namespace anc;
    using namespace anc::sim;
    bench::print_header("Figure 12", "chain topology: unidirectional flow");

    const std::size_t runs = bench::run_count();
    const std::size_t packets = bench::exchange_count();

    Cdf gain_over_traditional;
    Cdf ber_at_n2;

    for (std::size_t run = 0; run < runs; ++run) {
        Chain_config config;
        config.snr_db = 22.0;
        config.packets = packets;
        config.seed = 3000 + run;
        const Chain_result anc = run_chain_anc(config);
        const Chain_result traditional = run_chain_traditional(config);
        gain_over_traditional.add(gain(anc.metrics, traditional.metrics));
        ber_at_n2.add_all(anc.ber_at_n2.sorted_samples());
    }

    std::printf("(%zu runs x %zu packets, payload 2048 bits, SNR 22 dB)\n\n", runs,
                packets);
    bench::print_cdf("Fig 12(a): ANC gain over traditional", gain_over_traditional);
    std::printf("\n");
    bench::print_cdf("Fig 12(b): BER of interference decodes at N2", ber_at_n2);

    std::printf("\nPaper vs measured:\n");
    bench::print_compare("mean gain over traditional", 1.36, gain_over_traditional.mean());
    bench::print_compare("mean BER at N2 (vs ~4%% on Alice-Bob)", 0.010, ber_at_n2.mean());
    return 0;
}
