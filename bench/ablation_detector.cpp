// Ablation: interference-detection threshold (DESIGN.md §5.3).
//
// The paper thresholds "variance of the energy > 20 dB"; our scale-free
// reformulation compares the measured energy variance with what a clean
// constant-envelope signal would show.  This bench sweeps the threshold
// and reports detection rate on real collisions and false-alarm rate on
// clean packets, across SNR.

#include <cstdio>

#include "bench_util.h"
#include "channel/awgn.h"
#include "channel/link.h"
#include "dsp/msk.h"
#include "dsp/ops.h"
#include "phy/detector.h"
#include "util/bits.h"
#include "util/db.h"
#include "util/rng.h"

namespace {

using namespace anc;

dsp::Signal clean_packet(double snr_db, Pcg32& rng)
{
    const Bits bits = random_bits(1500, rng);
    const dsp::Msk_modulator modulator{1.0, rng.next_double() * 6.28};
    dsp::Signal signal = modulator.modulate(bits);
    chan::Awgn noise{chan::noise_power_for_snr_db(snr_db), rng.fork(1)};
    noise.add_in_place(signal);
    return signal;
}

dsp::Signal collided_packet(double snr_db, double sir_db, Pcg32& rng)
{
    const Bits bits_a = random_bits(1500, rng);
    const Bits bits_b = random_bits(1500, rng);
    const dsp::Msk_modulator mod_a{1.0, rng.next_double() * 6.28};
    const dsp::Msk_modulator mod_b{amplitude_from_db(-sir_db), rng.next_double() * 6.28};
    chan::Link_params drift;
    drift.phase_drift = 0.004;
    dsp::Signal mix = mod_a.modulate(bits_a);
    dsp::accumulate(mix, chan::Link_channel{drift}.apply(mod_b.modulate(bits_b)), 300);
    chan::Awgn noise{chan::noise_power_for_snr_db(snr_db), rng.fork(2)};
    noise.add_in_place(mix);
    return mix;
}

} // namespace

int main()
{
    using namespace anc;
    bench::print_header("Ablation", "interference detector threshold sweep");

    const int trials = 200;
    std::printf("%10s %8s %12s %12s %12s\n", "thresh(dB)", "SNR(dB)", "det@SIR0",
                "det@SIR6", "false alarm");
    for (const double threshold : {3.0, 6.0, 10.0, 14.0, 18.0}) {
        for (const double snr : {20.0, 25.0, 30.0}) {
            phy::Interference_detector::Config config;
            config.variance_threshold_db = threshold;
            const phy::Interference_detector detector{
                chan::noise_power_for_snr_db(snr), config};

            int detected_sir0 = 0;
            int detected_sir6 = 0;
            int false_alarms = 0;
            Pcg32 rng{static_cast<std::uint64_t>(threshold * 100 + snr)};
            for (int t = 0; t < trials; ++t) {
                detected_sir0 += detector.analyze(collided_packet(snr, 0.0, rng)).interfered;
                detected_sir6 += detector.analyze(collided_packet(snr, 6.0, rng)).interfered;
                false_alarms += detector.analyze(clean_packet(snr, rng)).interfered;
            }
            std::printf("%10.0f %8.0f %11.1f%% %11.1f%% %11.1f%%\n", threshold, snr,
                        100.0 * detected_sir0 / trials, 100.0 * detected_sir6 / trials,
                        100.0 * false_alarms / trials);
        }
    }
    std::printf("\nDefault threshold is 10 dB: full detection across the operating\n"
                "band with zero false alarms (the paper's '20 dB' was stated for a\n"
                "non-normalized variance).\n");
    return 0;
}
