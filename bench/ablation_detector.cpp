// Ablation: interference-detection threshold (DESIGN.md §5.3).
//
// The paper thresholds "variance of the energy > 20 dB"; our scale-free
// reformulation compares the measured energy variance with what a clean
// constant-envelope signal would show.  This bench sweeps the threshold
// and reports detection rate on real collisions and false-alarm rate on
// clean packets, across SNR.
//
// Runs on the sweep engine: the threshold is the grid's
// detector_thresholds_db axis (landing in Scenario_config::receiver's
// interference-detector config), trials per cell are the exchanges axis,
// and the (threshold x SNR) grid executes on the engine's thread pool.
// ANC_ENGINE_JSON / ANC_ENGINE_CSV emit the sweep document.  The printed
// table is byte-identical to the bespoke pre-engine loop
// (tests/golden/ablation_detector.txt locks this in).

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bench_util.h"
#include "channel/awgn.h"
#include "channel/link.h"
#include "dsp/msk.h"
#include "dsp/ops.h"
#include "engine/engine.h"
#include "phy/detector.h"
#include "util/bits.h"
#include "util/db.h"
#include "util/rng.h"

namespace {

using namespace anc;

dsp::Signal clean_packet(double snr_db, Pcg32& rng, dsp::Math_profile profile)
{
    const Bits bits = random_bits(1500, rng);
    const dsp::Msk_modulator modulator{1.0, rng.next_double() * 6.28, profile};
    dsp::Signal signal = modulator.modulate(bits);
    chan::Awgn noise{chan::noise_power_for_snr_db(snr_db), rng.fork(1), profile};
    noise.add_in_place(signal);
    return signal;
}

dsp::Signal collided_packet(double snr_db, double sir_db, Pcg32& rng,
                            dsp::Math_profile profile)
{
    const Bits bits_a = random_bits(1500, rng);
    const Bits bits_b = random_bits(1500, rng);
    const dsp::Msk_modulator mod_a{1.0, rng.next_double() * 6.28, profile};
    const dsp::Msk_modulator mod_b{amplitude_from_db(-sir_db),
                                   rng.next_double() * 6.28, profile};
    chan::Link_params drift;
    drift.phase_drift = 0.004;
    dsp::Signal mix = mod_a.modulate(bits_a);
    dsp::accumulate(mix,
                    chan::Link_channel{drift}.apply(mod_b.modulate(bits_b), 0, profile),
                    300);
    chan::Awgn noise{chan::noise_power_for_snr_db(snr_db), rng.fork(2), profile};
    noise.add_in_place(mix);
    return mix;
}

/// One (threshold, SNR) cell: `exchanges` detection trials against
/// synthetic clean and collided packets.  The cell seed is the
/// historical bench's threshold*100+snr formula — a pure function of
/// the config, preserved so the published table stays byte-stable
/// across the engine refactor (the engine-derived seed is unused).
engine::Scenario_result run_cell(const engine::Scenario_config& config, std::uint64_t)
{
    const double threshold =
        config.receiver.interference_detector.variance_threshold_db;
    const double snr = config.snr_db;
    const phy::Interference_detector detector{chan::noise_power_for_snr_db(snr),
                                              config.receiver.interference_detector};

    int detected_sir0 = 0;
    int detected_sir6 = 0;
    int false_alarms = 0;
    Pcg32 rng{static_cast<std::uint64_t>(threshold * 100 + snr)};
    const int trials = static_cast<int>(config.exchanges);
    for (int t = 0; t < trials; ++t) {
        detected_sir0 += detector
                             .analyze(collided_packet(snr, 0.0, rng,
                                                      config.math_profile))
                             .interfered;
        detected_sir6 += detector
                             .analyze(collided_packet(snr, 6.0, rng,
                                                      config.math_profile))
                             .interfered;
        false_alarms +=
            detector.analyze(clean_packet(snr, rng, config.math_profile)).interfered;
    }

    engine::Scenario_result out;
    out.metrics.packets_attempted = config.exchanges;
    out.scalars["detected_sir0"] = detected_sir0;
    out.scalars["detected_sir6"] = detected_sir6;
    out.scalars["false_alarms"] = false_alarms;
    return out;
}

const engine::Task_result& cell_at(const std::vector<engine::Task_result>& tasks,
                                   double threshold, double snr_db)
{
    for (const engine::Task_result& task : tasks) {
        if (task.task.config.receiver.interference_detector.variance_threshold_db
                == threshold
            && task.task.config.snr_db == snr_db)
            return task;
    }
    throw std::out_of_range{"ablation_detector: missing grid cell"};
}

} // namespace

int main()
{
    using namespace anc;
    bench::print_header("Ablation", "interference detector threshold sweep");

    const int trials = 200;
    const std::vector<double> thresholds{3.0, 6.0, 10.0, 14.0, 18.0};
    const std::vector<double> snrs{20.0, 25.0, 30.0};

    engine::Scenario_registry registry;
    registry.add(std::make_unique<engine::Function_scenario>(
        "ablation_detector", std::vector<std::string>{"anc"}, run_cell));

    engine::Sweep_grid grid;
    // exact by default; ANC_MATH_PROFILE=fast|both adds the fast profile
    // (profile-tagged rows; the CI fast-profile job uses this).
    grid.math_profiles = bench::math_profiles_from_env();
    grid.scenarios = {"ablation_detector"};
    grid.detector_thresholds_db = thresholds;
    grid.snr_db = snrs;
    grid.exchanges = {static_cast<std::size_t>(trials)};

    const engine::Sweep_outcome outcome =
        run_grid(grid, registry, engine::Executor_config{});
    emit_env_reports(outcome.tasks, outcome.points);
    const std::vector<engine::Task_result>& results = outcome.tasks;

    std::printf("%10s %8s %12s %12s %12s\n", "thresh(dB)", "SNR(dB)", "det@SIR0",
                "det@SIR6", "false alarm");
    for (const double threshold : thresholds) {
        for (const double snr : snrs) {
            const engine::Task_result& cell = cell_at(results, threshold, snr);
            std::printf("%10.0f %8.0f %11.1f%% %11.1f%% %11.1f%%\n", threshold, snr,
                        100.0 * cell.result.scalars.at("detected_sir0") / trials,
                        100.0 * cell.result.scalars.at("detected_sir6") / trials,
                        100.0 * cell.result.scalars.at("false_alarms") / trials);
        }
    }
    std::printf("\nDefault threshold is 10 dB: full detection across the operating\n"
                "band with zero false alarms (the paper's '20 dB' was stated for a\n"
                "non-normalized variance).\n");
    return 0;
}
