// Figure 7: capacity bounds vs SNR for the half-duplex 2-way relay
// channel — the traditional-routing upper bound against the ANC
// (amplify-and-forward) lower bound (Theorem 8.1).

#include <cstdio>

#include "bench_util.h"
#include "capacity/capacity.h"
#include "util/db.h"

int main()
{
    using namespace anc;
    bench::print_header("Figure 7", "capacity bounds vs SNR, half-duplex 2-way relay");

    std::printf("%8s %14s %12s %8s\n", "SNR(dB)", "traditional", "ANC", "gain");
    for (const cap::Capacity_point& p : cap::sweep(0.0, 55.0, 2.5)) {
        std::printf("%8.1f %14.4f %12.4f %8.3f\n", p.snr_db, p.traditional, p.anc, p.gain);
    }

    const double crossover = cap::crossover_snr_db();
    std::printf("\nANC overtakes traditional routing above %.2f dB "
                "(paper: low-SNR region is ~0-8 dB)\n", crossover);

    bench::print_compare("capacity gain at 25 dB", 1.55, cap::capacity_gain(from_db(25.0)));
    bench::print_compare("capacity gain at 40 dB", 1.70, cap::capacity_gain(from_db(40.0)));
    bench::print_compare("traditional b/s/Hz at 55 dB", 4.5,
                         cap::traditional_upper_bound(from_db(55.0)));
    bench::print_compare("ANC b/s/Hz at 55 dB", 8.3, cap::anc_lower_bound(from_db(55.0)));
    std::printf("\nAsymptotics: gain(80 dB)=%.3f, gain(160 dB)=%.3f -> 2 (Theorem 8.1)\n",
                cap::capacity_gain(from_db(80.0)), cap::capacity_gain(from_db(160.0)));
    return 0;
}
