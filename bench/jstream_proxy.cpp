// jstream_proxy — a fault-injecting TCP relay for exercising the
// anc.jstream.v1 transport (ENGINE.md "Remote workers") under the
// conditions the chaos suite cares about: connections reset mid-frame,
// bytes truncated at arbitrary offsets, bits flipped in flight, chunks
// duplicated, and delivery delayed.  Workers point --journal-stream at
// the proxy; the proxy forwards to the real coordinator listener and
// misbehaves on the way.
//
//   jstream_proxy --listen 0 --connect 127.0.0.1:9000 --seed 42
//       --kill-after 512:4096 --flip-prob 0.01 --dup-prob 0.05
//
// All faults are drawn from a SplitMix64 stream seeded per connection
// with (--seed ^ connection ordinal), so a failing chaos run replays
// exactly from its seed.  The proxy prints `jstream_proxy: listening
// on PORT` on stdout (for --listen 0 scripts) and serves until
// SIGTERM/SIGINT.  An unreachable or dying upstream only costs the
// client its connection — the proxy itself never exits on I/O errors,
// because the system under test is expected to reconnect through it.
//
// Single-threaded by design: one poll loop owns every connection, so
// fault decisions are serialized and deterministic given the seed and
// arrival order.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "util/net.h"

namespace {

using namespace anc;

std::atomic<bool> g_stop{false};

extern "C" void handle_signal(int)
{
    g_stop.store(true, std::memory_order_relaxed);
}

int usage(const char* argv0, const char* error = nullptr)
{
    if (error != nullptr)
        std::fprintf(stderr, "error: %s\n\n", error);
    std::fprintf(stderr,
                 "usage: %s --listen PORT --connect HOST:PORT [options]\n"
                 "\n"
                 "  --listen PORT        accept side (0 = ephemeral; the chosen\n"
                 "                       port is printed on stdout)\n"
                 "  --connect HOST:PORT  upstream (the real listener)\n"
                 "  --seed N             fault RNG seed (default 1)\n"
                 "  --kill-after MIN:MAX reset each connection after forwarding\n"
                 "                       MIN..MAX client bytes (truncates mid-\n"
                 "                       frame; 0 disables — the default)\n"
                 "  --flip-prob P        per-chunk probability of one flipped\n"
                 "                       bit (default 0)\n"
                 "  --dup-prob P         per-chunk probability of duplicate\n"
                 "                       delivery (default 0)\n"
                 "  --delay-ms MIN:MAX   random per-chunk delivery delay\n"
                 "                       (default 0:0)\n",
                 argv0);
    return error == nullptr ? 0 : 2;
}

/// SplitMix64 — the same tiny deterministic stream the engine uses for
/// seed derivation; good enough for fault scheduling.
struct Rng {
    std::uint64_t state = 0;
    std::uint64_t next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }
    double uniform() { return double(next() >> 11) * 0x1.0p-53; }
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi)
    {
        return hi <= lo ? lo : lo + next() % (hi - lo + 1);
    }
};

struct Fault_policy {
    std::uint64_t kill_lo = 0, kill_hi = 0; ///< 0 = never kill
    double flip_prob = 0.0;
    double dup_prob = 0.0;
    std::uint64_t delay_lo = 0, delay_hi = 0;
};

struct Connection {
    util::Tcp_socket client;
    util::Tcp_socket upstream;
    Rng rng;
    std::uint64_t kill_budget = 0; ///< client bytes left before reset; 0 = off
    bool doomed = false;

    Connection(util::Tcp_socket c, util::Tcp_socket u, std::uint64_t seed,
               const Fault_policy& policy)
        : client{std::move(c)}, upstream{std::move(u)}
    {
        rng.state = seed;
        if (policy.kill_hi > 0)
            kill_budget = rng.range(policy.kill_lo, policy.kill_hi);
    }
};

bool parse_range(const std::string& text, std::uint64_t& lo, std::uint64_t& hi)
{
    const std::size_t colon = text.find(':');
    try {
        if (colon == std::string::npos) {
            lo = hi = std::stoull(text);
        } else {
            lo = std::stoull(text.substr(0, colon));
            hi = std::stoull(text.substr(colon + 1));
        }
    } catch (...) {
        return false;
    }
    return lo <= hi;
}

/// Forward one direction's pending bytes, applying faults only to the
/// client→upstream stream (the journal lines; acks pass clean so the
/// sender's view of the mirror stays truthful — faulting data is what
/// exercises the CRC/drop path).  Returns false when the connection
/// should be torn down.
bool forward(Connection& conn, const Fault_policy& policy, bool client_to_upstream)
{
    util::Tcp_socket& from = client_to_upstream ? conn.client : conn.upstream;
    util::Tcp_socket& to = client_to_upstream ? conn.upstream : conn.client;

    std::string chunk;
    const auto status = from.recv_available(chunk);
    if (status == util::Tcp_socket::Recv_status::closed
        || status == util::Tcp_socket::Recv_status::error)
        return false;
    if (chunk.empty())
        return true;

    if (client_to_upstream) {
        if (policy.delay_hi > 0) {
            const std::uint64_t ms =
                conn.rng.range(policy.delay_lo, policy.delay_hi);
            if (ms > 0)
                std::this_thread::sleep_for(std::chrono::milliseconds{ms});
        }
        if (policy.flip_prob > 0 && conn.rng.uniform() < policy.flip_prob) {
            const std::uint64_t bit = conn.rng.next() % (chunk.size() * 8);
            chunk[bit / 8] = static_cast<char>(
                static_cast<unsigned char>(chunk[bit / 8]) ^ (1u << (bit % 8)));
        }
        if (conn.kill_budget > 0) {
            if (chunk.size() >= conn.kill_budget) {
                // Truncate inside the chunk, deliver the stub, then
                // reset: the receiver sees a frame cut at an arbitrary
                // byte followed by a hard close.
                chunk.resize(conn.kill_budget);
                conn.doomed = true;
            }
            conn.kill_budget -= chunk.size();
        }
    }

    if (!to.send_all(chunk.data(), chunk.size(), std::chrono::milliseconds{2000}))
        return false;
    if (client_to_upstream && policy.dup_prob > 0
        && conn.rng.uniform() < policy.dup_prob)
        to.send_all(chunk.data(), chunk.size(), std::chrono::milliseconds{2000});
    return !conn.doomed;
}

} // namespace

int main(int argc, char** argv)
{
    bool have_listen = false;
    std::uint16_t listen_port = 0;
    util::Host_port upstream;
    bool have_upstream = false;
    std::uint64_t seed = 1;
    Fault_policy policy;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--listen") {
            listen_port = static_cast<std::uint16_t>(std::stoul(value()));
            have_listen = true;
        } else if (arg == "--connect") {
            if (!util::parse_host_port(value(), upstream))
                return usage(argv[0], "--connect: bad host:port");
            have_upstream = true;
        } else if (arg == "--seed")
            seed = std::stoull(value());
        else if (arg == "--kill-after") {
            if (!parse_range(value(), policy.kill_lo, policy.kill_hi))
                return usage(argv[0], "--kill-after: bad MIN:MAX");
        } else if (arg == "--flip-prob")
            policy.flip_prob = std::stod(value());
        else if (arg == "--dup-prob")
            policy.dup_prob = std::stod(value());
        else if (arg == "--delay-ms") {
            if (!parse_range(value(), policy.delay_lo, policy.delay_hi))
                return usage(argv[0], "--delay-ms: bad MIN:MAX");
        } else if (arg == "--help" || arg == "-h")
            return usage(argv[0]);
        else
            return usage(argv[0], ("unknown argument " + arg).c_str());
    }
    if (!have_listen || !have_upstream)
        return usage(argv[0], "--listen and --connect are required");

    util::ignore_sigpipe();
    struct sigaction action{};
    action.sa_handler = handle_signal;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);

    util::Tcp_listener listener = util::Tcp_listener::listen(listen_port);
    std::printf("jstream_proxy: listening on %u\n", unsigned{listener.port()});
    std::fflush(stdout);

    std::vector<Connection> connections;
    std::uint64_t ordinal = 0;
    while (!g_stop.load(std::memory_order_relaxed)) {
        for (;;) {
            util::Tcp_socket client = listener.accept();
            if (!client.valid())
                break;
            util::Tcp_socket up = util::Tcp_socket::connect(
                upstream, std::chrono::milliseconds{1000});
            if (!up.valid()) {
                // Upstream down: drop the client; the worker's backoff
                // will route it back here when the coordinator returns.
                continue;
            }
            connections.emplace_back(std::move(client), std::move(up),
                                     seed ^ ++ordinal, policy);
        }
        for (auto it = connections.begin(); it != connections.end();) {
            if (forward(*it, policy, true) && forward(*it, policy, false))
                ++it;
            else
                it = connections.erase(it);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{2});
    }
    return 0;
}
