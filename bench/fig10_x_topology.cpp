// Figure 10: the "X" topology (Fig. 11), 40 runs.
//   (a) CDF of ANC's per-run throughput gain over traditional routing and
//       over COPE;
//   (b) CDF of per-packet BER — with the heavier tail caused by packets
//       whose overhearing failed (§11.5).
//
// Runs on the sweep engine (see fig09 for the engine knobs).

#include <cstdio>

#include "bench_util.h"
#include "engine/engine.h"

int main()
{
    using namespace anc;
    using namespace anc::engine;
    bench::print_header("Figure 10", "X topology: gains with overheard packets");

    const std::size_t runs = bench::run_count();
    const std::size_t exchanges = bench::exchange_count();

    Sweep_grid grid;
    // exact by default; ANC_MATH_PROFILE=fast|both adds the fast profile
    // (profile-tagged rows; the CI fast-profile job uses this).
    grid.math_profiles = bench::math_profiles_from_env();
    grid.scenarios = {"x_topology"};
    grid.schemes = {"traditional", "cope", "anc"};
    grid.snr_db = {22.0};
    grid.exchanges = {exchanges};
    grid.repetitions = runs;

    Executor_config exec;
    exec.base_seed = 2000;
    const Sweep_outcome outcome = run_grid(grid, exec);
    bench::print_engine_note(outcome.tasks.size(), exec);
    // Tables read the leading profile's points (unique per scheme);
    // the JSON/CSV artifacts keep every profile's rows.
    const std::vector<Point_summary> table_points =
        bench::points_for_profile(outcome.points, grid.math_profiles.front());

    const Point_summary& anc_point = summary_for(table_points, "x_topology", "anc");
    const Cdf gain_over_traditional =
        paired_gain(outcome.tasks, table_points, "x_topology", "anc", "traditional");
    const Cdf gain_over_cope =
        paired_gain(outcome.tasks, table_points, "x_topology", "anc", "cope");
    const auto overhear_attempts =
        static_cast<std::size_t>(anc_point.scalars.at("overhear_attempts"));
    const auto overhear_failures =
        static_cast<std::size_t>(anc_point.scalars.at("overhear_failures"));

    std::printf("(%zu runs x %zu packet pairs, payload 2048 bits, SNR 22 dB)\n\n",
                runs, exchanges);
    bench::print_cdf("Fig 10(a): ANC gain over traditional", gain_over_traditional);
    std::printf("\n");
    bench::print_cdf("Fig 10(a): ANC gain over COPE", gain_over_cope);
    std::printf("\n");
    bench::print_cdf("Fig 10(b): per-packet BER of ANC decodes",
                     anc_point.totals.packet_ber);
    std::printf("\nOverhearing under interference: %zu/%zu failed (%.1f%%)\n",
                overhear_failures, overhear_attempts,
                overhear_attempts
                    ? 100.0 * static_cast<double>(overhear_failures)
                          / static_cast<double>(overhear_attempts)
                    : 0.0);

    std::printf("\nPaper vs measured:\n");
    bench::print_compare("mean gain over traditional", 1.65, gain_over_traditional.mean());
    bench::print_compare("mean gain over COPE", 1.28, gain_over_cope.mean());
    return 0;
}
