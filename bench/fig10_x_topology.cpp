// Figure 10: the "X" topology (Fig. 11), 40 runs.
//   (a) CDF of ANC's per-run throughput gain over traditional routing and
//       over COPE;
//   (b) CDF of per-packet BER — with the heavier tail caused by packets
//       whose overhearing failed (§11.5).

#include <cstdio>

#include "bench_util.h"
#include "sim/x_topology.h"

int main()
{
    using namespace anc;
    using namespace anc::sim;
    bench::print_header("Figure 10", "X topology: gains with overheard packets");

    const std::size_t runs = bench::run_count();
    const std::size_t exchanges = bench::exchange_count();

    Cdf gain_over_traditional;
    Cdf gain_over_cope;
    Cdf packet_ber;
    std::size_t overhear_attempts = 0;
    std::size_t overhear_failures = 0;

    for (std::size_t run = 0; run < runs; ++run) {
        X_config config;
        config.snr_db = 22.0;
        config.exchanges = exchanges;
        config.seed = 2000 + run;
        const X_result anc = run_x_anc(config);
        const X_result traditional = run_x_traditional(config);
        const X_result cope = run_x_cope(config);
        gain_over_traditional.add(gain(anc.metrics, traditional.metrics));
        gain_over_cope.add(gain(anc.metrics, cope.metrics));
        packet_ber.add_all(anc.metrics.packet_ber.sorted_samples());
        overhear_attempts += anc.overhear_attempts;
        overhear_failures += anc.overhear_failures;
    }

    std::printf("(%zu runs x %zu packet pairs, payload 2048 bits, SNR 22 dB)\n\n",
                runs, exchanges);
    bench::print_cdf("Fig 10(a): ANC gain over traditional", gain_over_traditional);
    std::printf("\n");
    bench::print_cdf("Fig 10(a): ANC gain over COPE", gain_over_cope);
    std::printf("\n");
    bench::print_cdf("Fig 10(b): per-packet BER of ANC decodes", packet_ber);
    std::printf("\nOverhearing under interference: %zu/%zu failed (%.1f%%)\n",
                overhear_failures, overhear_attempts,
                overhear_attempts
                    ? 100.0 * static_cast<double>(overhear_failures)
                          / static_cast<double>(overhear_attempts)
                    : 0.0);

    std::printf("\nPaper vs measured:\n");
    bench::print_compare("mean gain over traditional", 1.65, gain_over_traditional.mean());
    bench::print_compare("mean gain over COPE", 1.28, gain_over_cope.mean());
    return 0;
}
