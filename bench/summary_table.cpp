// §11.3 "Summary of Results": every headline number of the evaluation in
// one table, paper vs measured.

#include <cstdio>

#include "bench_util.h"
#include "sim/alice_bob.h"
#include "sim/chain.h"
#include "sim/x_topology.h"
#include "util/db.h"

int main()
{
    using namespace anc;
    using namespace anc::sim;
    bench::print_header("Summary", "§11.3 headline results, paper vs measured");

    const std::size_t runs = bench::run_count(10);
    const std::size_t exchanges = bench::exchange_count();

    // ---- Alice-Bob ------------------------------------------------
    Cdf ab_gain_traditional, ab_gain_cope, ab_ber, ab_overlap;
    for (std::size_t run = 0; run < runs; ++run) {
        Alice_bob_config config;
        config.snr_db = 22.0;
        config.exchanges = exchanges;
        config.seed = 100 + run;
        const auto anc_r = run_alice_bob_anc(config);
        const auto trad_r = run_alice_bob_traditional(config);
        const auto cope_r = run_alice_bob_cope(config);
        ab_gain_traditional.add(gain(anc_r.metrics, trad_r.metrics));
        ab_gain_cope.add(gain(anc_r.metrics, cope_r.metrics));
        ab_ber.add(anc_r.metrics.mean_ber());
        ab_overlap.add(anc_r.metrics.mean_overlap());
    }

    // ---- X --------------------------------------------------------
    Cdf x_gain_traditional, x_gain_cope;
    for (std::size_t run = 0; run < runs; ++run) {
        X_config config;
        config.snr_db = 22.0;
        config.exchanges = exchanges;
        config.seed = 200 + run;
        const auto anc_r = run_x_anc(config);
        const auto trad_r = run_x_traditional(config);
        const auto cope_r = run_x_cope(config);
        x_gain_traditional.add(gain(anc_r.metrics, trad_r.metrics));
        x_gain_cope.add(gain(anc_r.metrics, cope_r.metrics));
    }

    // ---- Chain ----------------------------------------------------
    Cdf chain_gain, chain_ber;
    for (std::size_t run = 0; run < runs; ++run) {
        Chain_config config;
        config.snr_db = 22.0;
        config.packets = exchanges;
        config.seed = 300 + run;
        const auto anc_r = run_chain_anc(config);
        const auto trad_r = run_chain_traditional(config);
        chain_gain.add(gain(anc_r.metrics, trad_r.metrics));
        if (!anc_r.ber_at_n2.empty())
            chain_ber.add(anc_r.ber_at_n2.mean());
    }

    // ---- SIR robustness -------------------------------------------
    Cdf sir_ber;
    for (std::size_t run = 0; run < runs; ++run) {
        Alice_bob_config config;
        config.snr_db = 25.0;
        config.exchanges = exchanges;
        config.seed = 400 + run;
        config.bob_amplitude = amplitude_from_db(-3.0);
        const auto anc_r = run_alice_bob_anc(config);
        if (!anc_r.ber_at_alice.empty())
            sir_ber.add(anc_r.ber_at_alice.mean());
    }

    std::printf("(%zu runs x %zu packets each, payload 2048 bits)\n\n", runs, exchanges);
    std::printf("%-48s %8s %8s\n", "metric", "paper", "measured");
    std::printf("--------------------------------------------------------------------\n");
    const auto row = [](const char* name, double paper, double measured) {
        std::printf("%-48s %8.3f %8.3f\n", name, paper, measured);
    };
    row("Alice-Bob: ANC gain over traditional", 1.70, ab_gain_traditional.mean());
    row("Alice-Bob: ANC gain over COPE", 1.30, ab_gain_cope.mean());
    row("Alice-Bob: mean ANC BER", 0.04, ab_ber.mean());
    row("Alice-Bob: mean packet overlap", 0.80, ab_overlap.mean());
    row("X: ANC gain over traditional", 1.65, x_gain_traditional.mean());
    row("X: ANC gain over COPE", 1.28, x_gain_cope.mean());
    row("Chain: ANC gain over traditional", 1.36, chain_gain.mean());
    row("Chain: mean BER at N2", 0.015, chain_ber.mean());
    row("BER at SIR -3 dB (decoding at Alice)", 0.05, sir_ber.mean());
    return 0;
}
