// §11.3 "Summary of Results": every headline number of the evaluation in
// one table, paper vs measured.
//
// Runs on the sweep engine as one grid over all three topologies and
// every scheme (plus a low-SIR Alice-Bob point), executed in parallel.

#include <cstdio>

#include "bench_util.h"
#include "engine/engine.h"
#include "util/db.h"

int main()
{
    using namespace anc;
    using namespace anc::engine;
    bench::print_header("Summary", "§11.3 headline results, paper vs measured");

    const std::size_t runs = bench::run_count(10);
    const std::size_t exchanges = bench::exchange_count();

    // All three topologies under every scheme at the 22 dB operating point.
    Sweep_grid grid;
    // exact by default; ANC_MATH_PROFILE=fast|both adds the fast profile
    // (profile-tagged rows; the CI fast-profile job uses this).
    grid.math_profiles = bench::math_profiles_from_env();
    grid.scenarios = {"alice_bob", "x_topology", "chain"};
    grid.snr_db = {22.0};
    grid.exchanges = {exchanges};
    grid.repetitions = runs;
    Executor_config exec;
    exec.base_seed = 100;
    const Sweep_outcome outcome = run_grid(grid, exec);

    // The SIR-robustness headline needs a second operating point: Bob
    // 3 dB under Alice at 25 dB SNR.
    Sweep_grid sir_grid = grid;
    sir_grid.scenarios = {"alice_bob"};
    sir_grid.schemes = {"anc"};
    sir_grid.snr_db = {25.0};
    sir_grid.bob_amplitudes = {amplitude_from_db(-3.0)};
    Executor_config sir_exec;
    sir_exec.base_seed = 400;
    const Sweep_outcome sir_outcome = run_grid(sir_grid, sir_exec);

    bench::print_engine_note(outcome.tasks.size(), exec);
    bench::print_engine_note(sir_outcome.tasks.size(), sir_exec);

    // The table reads the leading profile's points/tasks (unique per
    // scheme); the JSON/CSV artifacts keep every profile's rows.
    const dsp::Math_profile table_profile = grid.math_profiles.front();
    const std::vector<Point_summary> table_points =
        bench::points_for_profile(outcome.points, table_profile);

    const auto gain_mean = [&](const char* scenario, const char* baseline) {
        return paired_gain(outcome.tasks, table_points, scenario, "anc", baseline)
            .mean();
    };

    // Mean of per-run means (each run weighted equally, like the
    // original hand-rolled loops), not the pooled per-packet mean.
    const auto per_run_series_mean = [table_profile](
                                         const std::vector<Task_result>& tasks,
                                         const char* scenario, const char* series) {
        Cdf means;
        for (const Task_result& task : tasks) {
            if (task.task.scenario != scenario || task.task.config.scheme != "anc"
                || task.task.config.math_profile != table_profile)
                continue;
            const Cdf& samples = task.result.series.at(series);
            if (!samples.empty())
                means.add(samples.mean());
        }
        return means;
    };

    const Point_summary& ab = summary_for(table_points, "alice_bob", "anc");
    const Cdf chain_ber = per_run_series_mean(outcome.tasks, "chain", "ber_at_n2");
    const Cdf sir_ber =
        per_run_series_mean(sir_outcome.tasks, "alice_bob", "ber_at_alice");

    std::printf("(%zu runs x %zu packets each, payload 2048 bits)\n\n", runs, exchanges);
    std::printf("%-48s %8s %8s\n", "metric", "paper", "measured");
    std::printf("--------------------------------------------------------------------\n");
    const auto row = [](const char* name, double paper, double measured) {
        std::printf("%-48s %8.3f %8.3f\n", name, paper, measured);
    };
    row("Alice-Bob: ANC gain over traditional", 1.70, gain_mean("alice_bob", "traditional"));
    row("Alice-Bob: ANC gain over COPE", 1.30, gain_mean("alice_bob", "cope"));
    row("Alice-Bob: mean ANC BER", 0.04, ab.run_mean_ber.mean());
    row("Alice-Bob: mean packet overlap", 0.80, ab.run_mean_overlap.mean());
    row("X: ANC gain over traditional", 1.65, gain_mean("x_topology", "traditional"));
    row("X: ANC gain over COPE", 1.28, gain_mean("x_topology", "cope"));
    row("Chain: ANC gain over traditional", 1.36, gain_mean("chain", "traditional"));
    row("Chain: mean BER at N2", 0.015,
        chain_ber.empty() ? 0.0 : chain_ber.mean());
    row("BER at SIR -3 dB (decoding at Alice)", 0.05,
        sir_ber.empty() ? 0.0 : sir_ber.mean());
    return 0;
}
