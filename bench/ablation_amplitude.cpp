// Ablation: amplitude estimation strategies (DESIGN.md §5.2).
//
// The receiver must know the two amplitudes A and B before it can solve
// Lemma 6.1.  Compared here:
//   prefix   — measure A from the interference-free prefix, derive B
//              from mu (the library default);
//   mu/sigma — the paper's Eq. 5-6 estimator, blind over the overlap.
// The deliverable is delivery rate and residual BER on the Alice-Bob
// topology at two SNRs.
//
// Runs on the sweep engine: the estimator choice is the scenario's
// *scheme* axis, the mu_sigma_only switch travels through
// Scenario_config::receiver, and the (SNR x estimator) grid executes on
// the engine's thread pool.  ANC_ENGINE_JSON / ANC_ENGINE_CSV emit the
// sweep document.  The printed table is byte-identical to the bespoke
// pre-engine loop (tests/golden/ablation_amplitude.txt locks this in).

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bench_util.h"
#include "channel/medium.h"
#include "core/anc_receiver.h"
#include "core/relay.h"
#include "core/trigger.h"
#include "engine/engine.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/topology.h"
#include "util/bits.h"

namespace {

using namespace anc;

/// One (estimator, SNR) cell — the pre-engine per-cell loop, verbatim,
/// with its knobs sourced from Scenario_config.  The historical bench
/// ran every cell at seed 42; that seed is kept (the engine-derived
/// seed is unused) so the published table stays byte-stable across the
/// refactor.
engine::Scenario_result run_cell(const engine::Scenario_config& config, std::uint64_t)
{
    constexpr std::uint64_t cell_seed = 42;
    engine::Scenario_result out;
    out.series["ber"]; // present even when nothing is delivered
    std::size_t attempted = 0;
    std::size_t delivered = 0;

    const double noise_power = chan::noise_power_for_snr_db(config.snr_db);
    Pcg32 rng{cell_seed, 0xab1a7e};
    chan::Medium medium{noise_power, rng.fork(1), config.math_profile};
    Pcg32 link_rng = rng.fork(2);
    net::Alice_bob_nodes nodes;
    install_alice_bob(medium, nodes, net::Alice_bob_gains{}, link_rng);
    phy::Modem_config node_modem;
    node_modem.math_profile = config.math_profile;
    net::Net_node alice{nodes.alice, node_modem};
    net::Net_node bob{nodes.bob, node_modem};
    Anc_receiver_config receiver_config = config.receiver;
    receiver_config.mu_sigma_only = config.scheme == "mu_sigma";
    const Anc_receiver receiver{receiver_config, noise_power, config.math_profile};
    Pcg32 wrng = rng.fork(3);
    net::Flow flow_ab{1, 3, 2048, wrng.fork(10)};
    net::Flow flow_ba{3, 1, 2048, wrng.fork(11)};

    for (std::size_t i = 0; i < config.exchanges; ++i) {
        const net::Packet pa = flow_ab.next();
        const net::Packet pb = flow_ba.next();
        const auto [da, db] = draw_distinct_delays(Trigger_config{}, wrng);
        const dsp::Signal signal_a = alice.transmit(pa, wrng);
        const dsp::Signal signal_b = bob.transmit(pb, wrng);
        const chan::Transmission round1[] = {{alice.id(), signal_a, da},
                                             {bob.id(), signal_b, db}};
        const auto at_router = medium.receive(nodes.router, round1, 64);
        const auto fwd = amplify_and_forward(at_router, noise_power, 1.0);
        if (!fwd) {
            attempted += 2;
            continue;
        }
        const chan::Transmission round2[] = {{nodes.router, *fwd, 0}};
        for (int side = 0; side < 2; ++side) {
            ++attempted;
            const auto& node = side ? bob : alice;
            const auto& wanted = side ? pa : pb;
            const auto sig = medium.receive(node.id(), round2, 64);
            const auto outcome = receiver.receive(sig, node.buffer());
            if (outcome.status == Receive_status::decoded_interference
                && outcome.frame->header.seq == wanted.seq) {
                ++delivered;
                out.series["ber"].add(
                    bit_error_rate(outcome.frame->payload, wanted.payload));
            }
        }
    }
    out.metrics.packets_attempted = attempted;
    out.metrics.packets_delivered = delivered;
    out.scalars["attempted"] = static_cast<double>(attempted);
    out.scalars["delivered"] = static_cast<double>(delivered);
    return out;
}

const engine::Task_result& cell_at(const std::vector<engine::Task_result>& tasks,
                                   const std::string& scheme, double snr_db)
{
    for (const engine::Task_result& task : tasks) {
        if (task.task.config.scheme == scheme && task.task.config.snr_db == snr_db)
            return task;
    }
    throw std::out_of_range{"ablation_amplitude: missing grid cell"};
}

} // namespace

int main()
{
    using namespace anc;
    bench::print_header("Ablation", "amplitude estimation: prefix-refined vs mu/sigma only");

    const std::size_t exchanges = bench::exchange_count() * 4;
    const std::vector<double> snrs{20.0, 22.0, 25.0, 30.0};

    engine::Scenario_registry registry;
    registry.add(std::make_unique<engine::Function_scenario>(
        "ablation_amplitude", std::vector<std::string>{"prefix", "mu_sigma"}, run_cell));

    engine::Sweep_grid grid;
    // exact by default; ANC_MATH_PROFILE=fast|both adds the fast profile
    // (profile-tagged rows; the CI fast-profile job uses this).
    grid.math_profiles = bench::math_profiles_from_env();
    grid.scenarios = {"ablation_amplitude"};
    grid.snr_db = snrs;
    grid.exchanges = {exchanges};

    const engine::Sweep_outcome outcome =
        run_grid(grid, registry, engine::Executor_config{});
    emit_env_reports(outcome.tasks, outcome.points);
    const std::vector<engine::Task_result>& results = outcome.tasks;

    std::printf("%8s %-22s %10s %10s %10s\n", "SNR(dB)", "estimator", "delivered",
                "mean BER", "p90 BER");
    for (const double snr : snrs) {
        for (const bool mu_sigma : {false, true}) {
            const engine::Task_result& cell =
                cell_at(results, mu_sigma ? "mu_sigma" : "prefix", snr);
            const Cdf& ber = cell.result.series.at("ber");
            std::printf("%8.0f %-22s %6zu/%-3zu %10.4f %10.4f\n", snr,
                        mu_sigma ? "mu/sigma (paper Eq.5-6)" : "prefix-refined",
                        cell.result.metrics.packets_delivered,
                        cell.result.metrics.packets_attempted,
                        ber.empty() ? 1.0 : ber.mean(),
                        ber.empty() ? 1.0 : ber.quantile(0.90));
        }
    }
    std::printf("\nBoth estimators work; the prefix refinement mainly stabilizes the\n"
                "role assignment (which amplitude belongs to the known signal).\n");
    return 0;
}
