// Ablation: amplitude estimation strategies (DESIGN.md §5.2).
//
// The receiver must know the two amplitudes A and B before it can solve
// Lemma 6.1.  Compared here:
//   prefix   — measure A from the interference-free prefix, derive B
//              from mu (the library default);
//   mu/sigma — the paper's Eq. 5-6 estimator, blind over the overlap.
// The deliverable is delivery rate and residual BER on the Alice-Bob
// topology at two SNRs.

#include <cstdio>

#include "bench_util.h"
#include "sim/alice_bob.h"

// The sim runner uses the receiver's internal estimator selection; the
// mu_sigma_only ablation flag is plumbed through a config copy here by
// re-running the receiver over the same air, so we reuse the scenario
// runner twice with a process-wide switch.  To keep the runner pure, the
// ablation instead compares across *seeds* with the two estimator
// configurations applied via Anc_receiver_config — which the scenario
// runner does not expose.  So this bench drives the receiver directly.

#include "channel/medium.h"
#include "core/anc_receiver.h"
#include "core/relay.h"
#include "core/trigger.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/topology.h"
#include "util/bits.h"

namespace {

struct Ablation_result {
    std::size_t attempted = 0;
    std::size_t delivered = 0;
    anc::Cdf ber;
};

Ablation_result run(bool mu_sigma_only, double snr_db, std::size_t exchanges,
                    std::uint64_t seed)
{
    using namespace anc;
    Ablation_result out;
    const double noise_power = chan::noise_power_for_snr_db(snr_db);
    Pcg32 rng{seed, 0xab1a7e};
    chan::Medium medium{noise_power, rng.fork(1)};
    Pcg32 link_rng = rng.fork(2);
    net::Alice_bob_nodes nodes;
    install_alice_bob(medium, nodes, net::Alice_bob_gains{}, link_rng);
    net::Net_node alice{nodes.alice};
    net::Net_node bob{nodes.bob};
    Anc_receiver_config config;
    config.mu_sigma_only = mu_sigma_only;
    const Anc_receiver receiver{config, noise_power};
    Pcg32 wrng = rng.fork(3);
    net::Flow flow_ab{1, 3, 2048, wrng.fork(10)};
    net::Flow flow_ba{3, 1, 2048, wrng.fork(11)};

    for (std::size_t i = 0; i < exchanges; ++i) {
        const net::Packet pa = flow_ab.next();
        const net::Packet pb = flow_ba.next();
        const auto [da, db] = draw_distinct_delays(Trigger_config{}, wrng);
        const dsp::Signal signal_a = alice.transmit(pa, wrng);
        const dsp::Signal signal_b = bob.transmit(pb, wrng);
        const chan::Transmission round1[] = {{alice.id(), signal_a, da},
                                             {bob.id(), signal_b, db}};
        const auto at_router = medium.receive(nodes.router, round1, 64);
        const auto fwd = amplify_and_forward(at_router, noise_power, 1.0);
        if (!fwd) {
            out.attempted += 2;
            continue;
        }
        const chan::Transmission round2[] = {{nodes.router, *fwd, 0}};
        for (int side = 0; side < 2; ++side) {
            ++out.attempted;
            const auto& node = side ? bob : alice;
            const auto& wanted = side ? pa : pb;
            const auto sig = medium.receive(node.id(), round2, 64);
            const auto outcome = receiver.receive(sig, node.buffer());
            if (outcome.status == Receive_status::decoded_interference
                && outcome.frame->header.seq == wanted.seq) {
                ++out.delivered;
                out.ber.add(bit_error_rate(outcome.frame->payload, wanted.payload));
            }
        }
    }
    return out;
}

} // namespace

int main()
{
    using namespace anc;
    bench::print_header("Ablation", "amplitude estimation: prefix-refined vs mu/sigma only");

    const std::size_t exchanges = bench::exchange_count() * 4;
    std::printf("%8s %-22s %10s %10s %10s\n", "SNR(dB)", "estimator", "delivered",
                "mean BER", "p90 BER");
    for (const double snr : {20.0, 22.0, 25.0, 30.0}) {
        for (const bool mu_sigma : {false, true}) {
            const Ablation_result result = run(mu_sigma, snr, exchanges, 42);
            std::printf("%8.0f %-22s %6zu/%-3zu %10.4f %10.4f\n", snr,
                        mu_sigma ? "mu/sigma (paper Eq.5-6)" : "prefix-refined",
                        result.delivered, result.attempted,
                        result.ber.empty() ? 1.0 : result.ber.mean(),
                        result.ber.empty() ? 1.0 : result.ber.quantile(0.90));
        }
    }
    std::printf("\nBoth estimators work; the prefix refinement mainly stabilizes the\n"
                "role assignment (which amplitude belongs to the known signal).\n");
    return 0;
}
