// Microbenchmarks for the DSP and PHY building blocks (google-benchmark).
// Not a paper figure — these quantify the per-stage cost of the pipeline
// in Fig. 8 for anyone porting it to a real-time SDR.

#include <benchmark/benchmark.h>

#include "channel/awgn.h"
#include "dsp/energy_scan.h"
#include "dsp/msk.h"
#include "dsp/ops.h"
#include "dsp/scrambler.h"
#include "phy/detector.h"
#include "phy/frame.h"
#include "phy/modem.h"
#include "phy/pilot.h"
#include "util/bits.h"
#include "util/rng.h"

namespace {

using namespace anc;

Bits make_bits(std::size_t n)
{
    Pcg32 rng{1};
    return random_bits(n, rng);
}

dsp::Signal make_signal(std::size_t bits)
{
    Pcg32 rng{2};
    const dsp::Msk_modulator modulator{1.0, 0.3};
    dsp::Signal signal = modulator.modulate(random_bits(bits, rng));
    chan::Awgn noise{0.003, rng.fork(1)};
    noise.add_in_place(signal);
    return signal;
}

void bm_msk_modulate(benchmark::State& state)
{
    const Bits bits = make_bits(static_cast<std::size_t>(state.range(0)));
    const dsp::Msk_modulator modulator;
    for (auto _ : state)
        benchmark::DoNotOptimize(modulator.modulate(bits));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_msk_modulate)->Arg(1024)->Arg(4096);

void bm_msk_demodulate(benchmark::State& state)
{
    const dsp::Signal signal = make_signal(static_cast<std::size_t>(state.range(0)));
    const dsp::Msk_demodulator demodulator;
    for (auto _ : state)
        benchmark::DoNotOptimize(demodulator.demodulate(signal));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_msk_demodulate)->Arg(1024)->Arg(4096);

void bm_scrambler(benchmark::State& state)
{
    const Bits bits = make_bits(2048);
    const dsp::Scrambler scrambler;
    for (auto _ : state)
        benchmark::DoNotOptimize(scrambler.apply(bits));
    state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(bm_scrambler);

void bm_energy_scan(benchmark::State& state)
{
    const dsp::Signal signal = make_signal(4096);
    for (auto _ : state)
        benchmark::DoNotOptimize(dsp::scan_energy(signal, 64));
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(bm_energy_scan);

void bm_packet_detector(benchmark::State& state)
{
    const dsp::Signal signal = make_signal(4096);
    const phy::Packet_detector detector{0.003};
    for (auto _ : state)
        benchmark::DoNotOptimize(detector.detect(signal));
}
BENCHMARK(bm_packet_detector);

void bm_interference_detector(benchmark::State& state)
{
    const dsp::Signal signal = make_signal(4096);
    const phy::Interference_detector detector{0.003};
    for (auto _ : state)
        benchmark::DoNotOptimize(detector.analyze(signal));
}
BENCHMARK(bm_interference_detector);

void bm_pilot_search(benchmark::State& state)
{
    Pcg32 rng{3};
    Bits haystack = random_bits(2048, rng);
    const Bits& pilot = phy::pilot_sequence();
    std::copy(pilot.begin(), pilot.end(), haystack.begin() + 1500);
    for (auto _ : state)
        benchmark::DoNotOptimize(phy::find_pilot(haystack, 6));
}
BENCHMARK(bm_pilot_search);

void bm_frame_build(benchmark::State& state)
{
    const Bits payload = make_bits(2048);
    phy::Frame_header header;
    header.src = 1;
    header.dst = 2;
    header.seq = 7;
    header.payload_bits = 2048;
    for (auto _ : state)
        benchmark::DoNotOptimize(phy::build_frame(header, payload));
}
BENCHMARK(bm_frame_build);

void bm_modem_receive_clean(benchmark::State& state)
{
    const Bits payload = make_bits(1024);
    phy::Frame_header header;
    header.src = 1;
    header.dst = 2;
    header.seq = 7;
    header.payload_bits = 1024;
    const phy::Modem modem;
    dsp::Signal signal = modem.modulate_frame(header, payload, 0.4);
    Pcg32 rng{4};
    chan::Awgn noise{0.003, rng};
    noise.add_in_place(signal);
    for (auto _ : state)
        benchmark::DoNotOptimize(modem.receive(signal));
}
BENCHMARK(bm_modem_receive_clean);

} // namespace

BENCHMARK_MAIN();
