// Ablation: error correction over ANC payloads (§11.2's "extra
// redundancy", made concrete).
//
// ANC delivers packets with a residual BER of a few percent, and the
// errors are *bursty*: they cluster where the two constellations align
// (the drifting-carrier ambiguity bands).  This bench runs real
// Hamming(7,4) decoding over the actually-decoded payloads and sweeps the
// interleaver depth, showing that burst-spreading — not just redundancy —
// is what buys clean packets.
//
// Runs on the sweep engine: the interleaver depth is the grid's
// interleave_rows axis (Scenario_config::fec_interleave_rows), and the
// (SNR x depth) grid executes on the engine's thread pool.
// ANC_ENGINE_JSON / ANC_ENGINE_CSV emit the sweep document.  The printed
// table is byte-identical to the bespoke pre-engine loop
// (tests/golden/ablation_fec.txt locks this in).

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bench_util.h"
#include "channel/medium.h"
#include "core/anc_receiver.h"
#include "core/relay.h"
#include "core/trigger.h"
#include "engine/engine.h"
#include "fec/codec.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/topology.h"
#include "util/bits.h"
#include "util/stats.h"

namespace {

using namespace anc;

/// One (SNR, interleaver depth) cell — the pre-engine per-cell loop,
/// verbatim, with its knobs sourced from Scenario_config.  The
/// historical bench ran every cell at seed 99; that seed is kept (the
/// engine-derived seed is unused) so the published table stays
/// byte-stable across the refactor.
engine::Scenario_result run_cell(const engine::Scenario_config& config, std::uint64_t)
{
    constexpr std::uint64_t cell_seed = 99;
    engine::Scenario_result out;
    out.series["raw_ber"];
    out.series["data_ber"];
    std::size_t clean = 0;
    std::size_t decoded = 0;

    const fec::Fec_codec codec{config.fec_interleave_rows};
    const std::size_t data_bits = 1170;

    const double noise_power = chan::noise_power_for_snr_db(config.snr_db);
    Pcg32 rng{cell_seed, 0xfec};
    chan::Medium medium{noise_power, rng.fork(1), config.math_profile};
    Pcg32 link_rng = rng.fork(2);
    net::Alice_bob_nodes nodes;
    install_alice_bob(medium, nodes, net::Alice_bob_gains{}, link_rng);
    phy::Modem_config node_modem;
    node_modem.math_profile = config.math_profile;
    net::Net_node alice{nodes.alice, node_modem};
    net::Net_node bob{nodes.bob, node_modem};
    const Anc_receiver receiver{config.receiver, noise_power, config.math_profile};
    Pcg32 traffic = rng.fork(3);

    for (std::size_t i = 0; i < config.exchanges; ++i) {
        const Bits data = random_bits(data_bits, traffic);
        net::Packet pb;
        pb.src = 3;
        pb.dst = 1;
        pb.seq = static_cast<std::uint16_t>(i + 1);
        pb.payload = codec.encode(data);
        net::Packet pa;
        pa.src = 1;
        pa.dst = 3;
        pa.seq = static_cast<std::uint16_t>(i + 1);
        pa.payload = random_bits(pb.payload.size(), traffic);

        const auto [da, db] = draw_distinct_delays(Trigger_config{}, rng);
        const dsp::Signal signal_a = alice.transmit(pa, rng);
        const dsp::Signal signal_b = bob.transmit(pb, rng);
        const chan::Transmission round1[] = {{alice.id(), signal_a, da},
                                             {bob.id(), signal_b, db}};
        const auto at_router = medium.receive(nodes.router, round1, 64);
        const auto fwd = amplify_and_forward(at_router, noise_power, 1.0);
        if (!fwd)
            continue;
        const chan::Transmission round2[] = {{nodes.router, *fwd, 0}};
        const auto at_alice = medium.receive(alice.id(), round2, 64);
        const auto outcome = receiver.receive(at_alice, alice.buffer());
        if (outcome.status != Receive_status::decoded_interference)
            continue;

        ++decoded;
        out.series["raw_ber"].add(bit_error_rate(outcome.frame->payload, pb.payload));
        const Bits recovered = codec.decode(outcome.frame->payload, data_bits);
        const double residual = bit_error_rate(recovered, data);
        out.series["data_ber"].add(residual);
        clean += (residual == 0.0);
    }
    out.metrics.packets_attempted = config.exchanges;
    out.metrics.packets_delivered = decoded;
    out.scalars["clean"] = static_cast<double>(clean);
    out.scalars["decoded"] = static_cast<double>(decoded);
    return out;
}

const engine::Task_result& cell_at(const std::vector<engine::Task_result>& tasks,
                                   double snr_db, std::size_t rows)
{
    for (const engine::Task_result& task : tasks) {
        if (task.task.config.snr_db == snr_db
            && task.task.config.fec_interleave_rows == rows)
            return task;
    }
    throw std::out_of_range{"ablation_fec: missing grid cell"};
}

} // namespace

int main()
{
    using namespace anc;
    bench::print_header("Ablation", "FEC over real ANC error patterns, interleaver sweep");

    const std::size_t exchanges = bench::exchange_count() * 3;
    const std::vector<double> snrs{20.0, 22.0, 25.0};
    const std::vector<std::size_t> depths{1, 8, 64};

    engine::Scenario_registry registry;
    registry.add(std::make_unique<engine::Function_scenario>(
        "ablation_fec", std::vector<std::string>{"anc"}, run_cell));

    engine::Sweep_grid grid;
    // exact by default; ANC_MATH_PROFILE=fast|both adds the fast profile
    // (profile-tagged rows; the CI fast-profile job uses this).
    grid.math_profiles = bench::math_profiles_from_env();
    grid.scenarios = {"ablation_fec"};
    grid.snr_db = snrs;
    grid.interleave_rows = depths;
    grid.exchanges = {exchanges};

    const engine::Sweep_outcome outcome =
        run_grid(grid, registry, engine::Executor_config{});
    emit_env_reports(outcome.tasks, outcome.points);
    const std::vector<engine::Task_result>& results = outcome.tasks;

    std::printf("%8s %12s %12s %14s %12s\n", "SNR(dB)", "interleave", "raw BER",
                "post-FEC BER", "clean pkts");
    for (const double snr : snrs) {
        for (const std::size_t rows : depths) {
            const engine::Task_result& cell = cell_at(results, snr, rows);
            const Cdf& raw_ber = cell.result.series.at("raw_ber");
            const Cdf& data_ber = cell.result.series.at("data_ber");
            std::printf("%8.0f %12zu %12.5f %14.5f %7zu/%zu\n", snr, rows,
                        raw_ber.empty() ? 0.0 : raw_ber.mean(),
                        data_ber.empty() ? 0.0 : data_ber.mean(),
                        static_cast<std::size_t>(cell.result.scalars.at("clean")),
                        static_cast<std::size_t>(cell.result.scalars.at("decoded")));
        }
    }
    std::printf("\nANC's residual errors are bursty (carrier-drift ambiguity bands), so\n"
                "a deep interleaver matters as much as the code rate: at 64 rows the\n"
                "rate-4/7 code delivers clean packets through most collisions.\n");
    return 0;
}
