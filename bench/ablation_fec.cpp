// Ablation: error correction over ANC payloads (§11.2's "extra
// redundancy", made concrete).
//
// ANC delivers packets with a residual BER of a few percent, and the
// errors are *bursty*: they cluster where the two constellations align
// (the drifting-carrier ambiguity bands).  This bench runs real
// Hamming(7,4) decoding over the actually-decoded payloads and sweeps the
// interleaver depth, showing that burst-spreading — not just redundancy —
// is what buys clean packets.

#include <cstdio>

#include "bench_util.h"
#include "channel/medium.h"
#include "core/anc_receiver.h"
#include "core/relay.h"
#include "core/trigger.h"
#include "fec/codec.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/topology.h"
#include "util/bits.h"
#include "util/stats.h"

namespace {

using namespace anc;

struct Fec_stats {
    Cdf raw_ber;
    Cdf data_ber;
    std::size_t clean = 0;
    std::size_t decoded = 0;
};

Fec_stats run(double snr_db, std::size_t interleave_rows, std::size_t exchanges,
              std::uint64_t seed)
{
    Fec_stats stats;
    const fec::Fec_codec codec{interleave_rows};
    const std::size_t data_bits = 1170;

    const double noise_power = chan::noise_power_for_snr_db(snr_db);
    Pcg32 rng{seed, 0xfec};
    chan::Medium medium{noise_power, rng.fork(1)};
    Pcg32 link_rng = rng.fork(2);
    net::Alice_bob_nodes nodes;
    install_alice_bob(medium, nodes, net::Alice_bob_gains{}, link_rng);
    net::Net_node alice{nodes.alice};
    net::Net_node bob{nodes.bob};
    const Anc_receiver receiver{Anc_receiver_config{}, noise_power};
    Pcg32 traffic = rng.fork(3);

    for (std::size_t i = 0; i < exchanges; ++i) {
        const Bits data = random_bits(data_bits, traffic);
        net::Packet pb;
        pb.src = 3;
        pb.dst = 1;
        pb.seq = static_cast<std::uint16_t>(i + 1);
        pb.payload = codec.encode(data);
        net::Packet pa;
        pa.src = 1;
        pa.dst = 3;
        pa.seq = static_cast<std::uint16_t>(i + 1);
        pa.payload = random_bits(pb.payload.size(), traffic);

        const auto [da, db] = draw_distinct_delays(Trigger_config{}, rng);
        const dsp::Signal signal_a = alice.transmit(pa, rng);
        const dsp::Signal signal_b = bob.transmit(pb, rng);
        const chan::Transmission round1[] = {{alice.id(), signal_a, da},
                                             {bob.id(), signal_b, db}};
        const auto at_router = medium.receive(nodes.router, round1, 64);
        const auto fwd = amplify_and_forward(at_router, noise_power, 1.0);
        if (!fwd)
            continue;
        const chan::Transmission round2[] = {{nodes.router, *fwd, 0}};
        const auto at_alice = medium.receive(alice.id(), round2, 64);
        const auto outcome = receiver.receive(at_alice, alice.buffer());
        if (outcome.status != Receive_status::decoded_interference)
            continue;

        ++stats.decoded;
        stats.raw_ber.add(bit_error_rate(outcome.frame->payload, pb.payload));
        const Bits recovered = codec.decode(outcome.frame->payload, data_bits);
        const double residual = bit_error_rate(recovered, data);
        stats.data_ber.add(residual);
        stats.clean += (residual == 0.0);
    }
    return stats;
}

} // namespace

int main()
{
    using namespace anc;
    bench::print_header("Ablation", "FEC over real ANC error patterns, interleaver sweep");

    const std::size_t exchanges = bench::exchange_count() * 3;
    std::printf("%8s %12s %12s %14s %12s\n", "SNR(dB)", "interleave", "raw BER",
                "post-FEC BER", "clean pkts");
    for (const double snr : {20.0, 22.0, 25.0}) {
        for (const std::size_t rows : {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
            const Fec_stats stats = run(snr, rows, exchanges, 99);
            std::printf("%8.0f %12zu %12.5f %14.5f %7zu/%zu\n", snr, rows,
                        stats.raw_ber.empty() ? 0.0 : stats.raw_ber.mean(),
                        stats.data_ber.empty() ? 0.0 : stats.data_ber.mean(), stats.clean,
                        stats.decoded);
        }
    }
    std::printf("\nANC's residual errors are bursty (carrier-drift ambiguity bands), so\n"
                "a deep interleaver matters as much as the code rate: at 64 rows the\n"
                "rate-4/7 code delivers clean packets through most collisions.\n");
    return 0;
}
