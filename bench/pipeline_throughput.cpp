// Self-contained throughput bench for the DSP/PHY sample pipeline — no
// Google Benchmark dependency, unlike the micro_* targets, so it always
// builds and runs (CI included).
//
// Times the Fig. 8 hot path stage by stage — modulate, medium mix, relay
// amplify-and-forward, demodulate, interference decode — plus the full
// alice_bob ANC exchange end-to-end, in samples per second, and counts
// heap allocations per steady-state iteration (the zero-allocation
// invariant of PERF.md).  Stages with a `_fast` suffix run the same
// workload under dsp::Math_profile::fast (PERF.md "Math profiles"); the
// unsuffixed stages are the historical bit-exact path.  With
// --min-fast-gain R the process exits non-zero unless the fast
// end-to-end exchange reaches at least R times the exact one.
//
// Output: a human table on stdout and, with --json PATH, a BENCH_dsp.json
// document.  With --baseline PATH the measured throughputs are compared
// against a previously recorded document and the process exits non-zero
// when any stage falls below --min-ratio (default 0.75, i.e. a >25%
// regression) of its baseline.
//
// The workload is fully deterministic (fixed seeds, fixed sizes); only
// the measured rates vary run to run.
//
// With --normalize the per-stage ratios are divided by their median
// before the check, cancelling overall machine speed: a slower CI runner
// passes, while any *one* stage regressing relative to the others still
// fails.  CI uses --normalize against the committed baseline.
//
// --stages a,b,c restricts the run to the named stages (the CI profile
// jobs measure only their profile's stages instead of re-measuring
// every exact stage).  The baseline gate then checks only the measured
// stages — a missing *measured* stage still fails it.
//
// Stages with a `_simd` suffix run under dsp::Math_profile::simd (the
// runtime-dispatched lane backend, avx512 ≻ avx2 ≻ scalar; PERF.md
// "SIMD backend").  --min-simd-gain R requires the simd end-to-end
// exchange to reach R times the *fast* one; when the backend resolved
// to scalar (no AVX2, or ANC_FORCE_SCALAR_SIMD set) the gate is
// skipped with a visible notice instead — there is no hardware gain to
// demand — and when it resolved below avx512 (CPU lacks avx512f, or
// ANC_FORCE_AVX2_SIMD set) a notice flags that the gate is measuring
// the narrower backend, so CI on non-AVX-512 runners cannot silently
// pass an avx512-calibrated threshold.
//
// The pilot_search / pilot_search_packed pair times phy::find_pattern's
// historical byte-per-bit scan against the packed bit-domain scan
// (PERF.md "Bit-domain pilot search") in bits per second over the same
// haystack — both zero-alloc on warm workspace scratch, enforced like
// every other stage.
//
// --pr N stamps a `"pr": N` field into the JSON document — the
// convention behind the committed BENCH_dsp.json trajectory snapshots
// (PERF.md "Perf trajectory").
//
// --check-trajectory PATH (repeatable) validates trajectory snapshots
// instead of benching: each file must carry the anc.bench.dsp.v1 schema,
// a "pr" stamp, a workload echo, and well-formed stage entries (every
// samples_per_sec positive), and across multiple files — given in
// chronological order — the pr numbers must be strictly increasing.
// Run by CI on the committed BENCH_dsp.json so the trajectory cannot
// silently rot.
//
// The `alice_bob_exchange_telemetry` stage is the exact-profile exchange
// with an obs::Recorder bound (full counter + stage-timer collection,
// OBSERVABILITY.md) — its gap to `alice_bob_exchange` is the telemetry
// overhead, printed always and gated by --max-telemetry-overhead PCT.
//
// Usage: pipeline_throughput [--json PATH] [--baseline PATH]
//                            [--min-ratio R] [--normalize] [--quick]
//                            [--min-fast-gain R] [--min-simd-gain R]
//                            [--max-telemetry-overhead PCT]
//                            [--stages a,b,c] [--pr N]
//                            [--check-trajectory PATH]...

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "channel/medium.h"
#include "core/interference_decoder.h"
#include "core/relay.h"
#include "dsp/math_profile.h"
#include "dsp/msk.h"
#include "dsp/ops.h"
#include "dsp/workspace.h"
#include "net/topology.h"
#include "phy/pilot.h"
#include "sim/alice_bob.h"
#include "util/bits.h"
#include "util/cpu_features.h"
#include "util/obs.h"
#include "util/rng.h"
#include "util/simd.h"

// ------------------------------------------------------------ allocation
// Global counting allocator: every heap allocation in the process passes
// through here, so a stage's steady-state allocation count is the
// difference of g_allocations around its loop.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc{};
}

void* operator new[](std::size_t size)
{
    return ::operator new(size);
}

void* operator new(std::size_t size, std::align_val_t align)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     (size + static_cast<std::size_t>(align) - 1)
                                         / static_cast<std::size_t>(align)
                                         * static_cast<std::size_t>(align)))
        return p;
    throw std::bad_alloc{};
}

void* operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace anc;

using Clock = std::chrono::steady_clock;

struct Stage_result {
    std::string name;
    double samples_per_sec = 0.0;
    std::uint64_t samples_per_iteration = 0;
    std::uint64_t iterations = 0;
    std::uint64_t heap_allocs_per_iteration = 0; // steady state, warm buffers
};

double seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Run `body` (which processes `samples_per_iter` samples per call) for
/// at least `min_seconds`, after `warmup` untimed calls, and report the
/// throughput plus the steady-state allocation count of one iteration.
template <class Body>
Stage_result time_stage(const char* name, std::uint64_t samples_per_iter,
                        std::size_t warmup, double min_seconds, Body&& body)
{
    Stage_result result;
    result.name = name;
    result.samples_per_iteration = samples_per_iter;

    for (std::size_t i = 0; i < warmup; ++i)
        body();

    // One post-warmup iteration under the allocation counter.
    const std::uint64_t allocs_before = g_allocations.load(std::memory_order_relaxed);
    body();
    result.heap_allocs_per_iteration =
        g_allocations.load(std::memory_order_relaxed) - allocs_before;

    // Best of three measurement windows: a transient stall (scheduler,
    // frequency dip) drags a single window but rarely all three, so the
    // max is a far steadier statistic for the CI regression gate while a
    // genuine code regression still shifts it.
    for (int window = 0; window < 3; ++window) {
        std::uint64_t iterations = 0;
        const auto start = Clock::now();
        double elapsed = 0.0;
        do {
            body();
            ++iterations;
            elapsed = seconds_since(start);
        } while (elapsed < min_seconds);
        const double rate =
            static_cast<double>(iterations * samples_per_iter) / elapsed;
        if (rate > result.samples_per_sec) {
            result.samples_per_sec = rate;
            result.iterations = iterations;
        }
    }
    return result;
}

Bits frame_sized_bits(std::size_t count, std::uint64_t seed)
{
    Pcg32 rng{seed, 17};
    return random_bits(count, rng);
}

/// Stage naming convention: "<base>" = exact profile, "<base>_fast" =
/// Math_profile::fast, "<base>_simd" = Math_profile::simd.
std::string stage_name(const char* base, dsp::Math_profile profile)
{
    std::string name{base};
    if (profile == dsp::Math_profile::fast)
        name += "_fast";
    else if (profile == dsp::Math_profile::simd)
        name += "_simd";
    return name;
}

// --------------------------------------------------------------- stages

constexpr std::size_t bench_frame_bits = 2304; // ~payload 2048 + overhead
constexpr double bench_snr_db = 25.0;

Stage_result bench_modulate(double min_seconds, dsp::Math_profile profile)
{
    const Bits bits = frame_sized_bits(bench_frame_bits, 0xA0);
    const dsp::Msk_modulator modulator{1.0, 0.37, profile};
    auto signal = dsp::Workspace::current().signal();
    return time_stage(stage_name("modulate", profile).c_str(), bits.size() + 1, 2,
                      min_seconds, [&] {
        modulator.modulate_into(bits, *signal);
    });
}

Stage_result bench_mix(double min_seconds, dsp::Math_profile profile)
{
    const double noise_power = chan::noise_power_for_snr_db(bench_snr_db);
    Pcg32 rng{7, 3};
    chan::Medium medium{noise_power, rng.fork(1), profile};
    net::Alice_bob_nodes nodes;
    net::Alice_bob_gains gains;
    Pcg32 link_rng = rng.fork(2);
    install_alice_bob(medium, nodes, gains, link_rng);

    const Bits bits_a = frame_sized_bits(bench_frame_bits, 0xB0);
    const Bits bits_b = frame_sized_bits(bench_frame_bits, 0xB1);
    const dsp::Msk_modulator modulator{1.0, 0.0};
    const dsp::Signal signal_a = modulator.modulate(bits_a);
    const dsp::Signal signal_b = modulator.modulate(bits_b);

    chan::Transmission ta{nodes.alice, signal_a, 140};
    chan::Transmission tb{nodes.bob, signal_b, 280};
    const std::vector<chan::Transmission> on_air{ta, tb};
    const std::uint64_t mixed = 280 + signal_b.size() + 64;

    auto out = dsp::Workspace::current().signal();
    return time_stage(stage_name("mix", profile).c_str(), mixed, 2, min_seconds, [&] {
        medium.receive_into(nodes.router, on_air, 64, *out);
    });
}

Stage_result bench_fading_mix(double min_seconds)
{
    // The mix stage over Rayleigh block-fading links (the *_fading
    // scenarios): same two overlapped frames, but every link multiplies
    // in a counter-based CN(0,1) coefficient per 512-sample coherence
    // block.  Block-gain draws are stack-local Pcg32 streams, so the
    // zero-allocation invariant covers the fading kernels too.
    const double noise_power = chan::noise_power_for_snr_db(bench_snr_db);
    Pcg32 rng{7, 3};
    chan::Medium medium{noise_power, rng.fork(1)};
    net::Alice_bob_nodes nodes;
    net::Alice_bob_gains gains;
    net::Link_fading fading;
    fading.model = chan::Gain_model::rayleigh_block;
    fading.coherence_block = 512;
    Pcg32 link_rng = rng.fork(2);
    install_alice_bob(medium, nodes, gains, fading, link_rng);

    const Bits bits_a = frame_sized_bits(bench_frame_bits, 0xB0);
    const Bits bits_b = frame_sized_bits(bench_frame_bits, 0xB1);
    const dsp::Msk_modulator modulator{1.0, 0.0};
    const dsp::Signal signal_a = modulator.modulate(bits_a);
    const dsp::Signal signal_b = modulator.modulate(bits_b);

    chan::Transmission ta{nodes.alice, signal_a, 140};
    chan::Transmission tb{nodes.bob, signal_b, 280};
    const std::vector<chan::Transmission> on_air{ta, tb};
    const std::uint64_t mixed = 280 + signal_b.size() + 64;

    auto out = dsp::Workspace::current().signal();
    return time_stage("fading_mix", mixed, 2, min_seconds, [&] {
        medium.receive_into(nodes.router, on_air, 64, *out);
    });
}

Stage_result bench_relay(double min_seconds)
{
    // A realistic relay input: two overlapped frames plus noise.
    const double noise_power = chan::noise_power_for_snr_db(bench_snr_db);
    Pcg32 rng{9, 5};
    chan::Medium medium{noise_power, rng.fork(1)};
    net::Alice_bob_nodes nodes;
    net::Alice_bob_gains gains;
    Pcg32 link_rng = rng.fork(2);
    install_alice_bob(medium, nodes, gains, link_rng);

    const dsp::Msk_modulator modulator{1.0, 0.0};
    const dsp::Signal signal_a = modulator.modulate(frame_sized_bits(bench_frame_bits, 0xC0));
    const dsp::Signal signal_b = modulator.modulate(frame_sized_bits(bench_frame_bits, 0xC1));
    const std::vector<chan::Transmission> on_air{{nodes.alice, signal_a, 140},
                                                 {nodes.bob, signal_b, 280}};
    dsp::Signal received;
    medium.receive_into(nodes.router, on_air, 64, received);

    auto out = dsp::Workspace::current().signal();
    return time_stage("relay", received.size(), 2, min_seconds, [&] {
        amplify_and_forward_into(received, noise_power, 1.0, *out);
    });
}

Stage_result bench_interference_decode(double min_seconds, dsp::Math_profile profile)
{
    // The Eq. 7-8 phase-solver loop over a realistic two-signal collision
    // (the stage the exact profile pins on 4 atan2 calls per sample).
    const double noise_power = chan::noise_power_for_snr_db(bench_snr_db);
    Pcg32 rng{21, 13};
    chan::Medium medium{noise_power, rng.fork(1)};
    net::Alice_bob_nodes nodes;
    net::Alice_bob_gains gains;
    Pcg32 link_rng = rng.fork(2);
    install_alice_bob(medium, nodes, gains, link_rng);

    const Bits bits_a = frame_sized_bits(bench_frame_bits, 0xE0);
    const Bits bits_b = frame_sized_bits(bench_frame_bits, 0xE1);
    const dsp::Msk_modulator modulator{1.0, 0.0};
    const dsp::Signal signal_a = modulator.modulate(bits_a);
    const dsp::Signal signal_b = modulator.modulate(bits_b);
    const std::vector<chan::Transmission> on_air{{nodes.alice, signal_a, 0},
                                                 {nodes.bob, signal_b, 96}};
    dsp::Signal received;
    medium.receive_into(nodes.router, on_air, 0, received);

    const std::vector<double> known_diffs = dsp::phase_differences_for_bits(bits_a);
    const Interference_decoder decoder{profile};
    dsp::Workspace& workspace = dsp::Workspace::current();
    auto bits = workspace.bits();
    auto phi_differences = workspace.reals();
    auto match_errors = workspace.reals();
    return time_stage(stage_name("interference_decode", profile).c_str(),
                      received.size(), 2, min_seconds, [&] {
        decoder.decode_into(received, known_diffs, 0.95, 0.90, *bits,
                            *phi_differences, *match_errors);
    });
}

Stage_result bench_demodulate(double min_seconds)
{
    const dsp::Msk_modulator modulator{1.0, 1.1};
    const dsp::Signal signal = modulator.modulate(frame_sized_bits(bench_frame_bits, 0xD0));
    const dsp::Msk_demodulator demodulator;
    auto bits = dsp::Workspace::current().bits();
    return time_stage("demodulate", signal.size(), 2, min_seconds, [&] {
        demodulator.demodulate_into(signal, *bits);
    });
}

Stage_result bench_pilot_search(double min_seconds, bool packed)
{
    // A frame-sized random haystack with the pilot planted at the very
    // last fitting position: random bits cannot hit zero errors by
    // chance (p ≈ 2^-64 per start), so both variants scan every start
    // before the early break fires — identical full-span work.
    Bits bits = frame_sized_bits(bench_frame_bits, 0xF5);
    const Bits& pilot = phy::pilot_sequence();
    const std::size_t plant = bits.size() - phy::pilot_length;
    for (std::size_t i = 0; i < phy::pilot_length; ++i)
        bits[plant + i] = pilot[i];

    if (!packed) {
        // The historical byte-per-bit loop, preserved as the reference
        // (phy::find_pattern_scalar).
        return time_stage("pilot_search", bits.size(), 2, min_seconds, [&] {
            const auto match =
                phy::find_pattern_scalar(bits, pilot, 0, bits.size(), 6);
            if (!match || match->position != plant)
                std::fprintf(stderr, "warning: pilot search missed the plant\n");
        });
    }
    // The production bit-domain path, including the per-frame packing
    // (workspace-leased words, so the steady state allocates nothing).
    return time_stage("pilot_search_packed", bits.size(), 2, min_seconds, [&] {
        const auto match = phy::find_pattern(bits, pilot, 0, bits.size(), 6);
        if (!match || match->position != plant)
            std::fprintf(stderr, "warning: pilot search missed the plant\n");
    });
}

Stage_result bench_exchange(double min_seconds, bool quick, dsp::Math_profile profile)
{
    sim::Alice_bob_config config;
    config.payload_bits = 2048;
    config.exchanges = quick ? 2 : 4;
    config.snr_db = bench_snr_db;
    config.math_profile = profile;
    config.seed = 12345;

    // Samples the exchange pushes through the pipeline: measure once (the
    // workload is deterministic) and reuse as the per-iteration count.
    const sim::Alice_bob_result probe = sim::run_alice_bob_anc(config);
    const auto samples = static_cast<std::uint64_t>(probe.metrics.airtime_symbols);

    return time_stage(stage_name("alice_bob_exchange", profile).c_str(), samples, 1,
                      min_seconds, [&] {
        const sim::Alice_bob_result result = sim::run_alice_bob_anc(config);
        if (result.metrics.packets_delivered == 0)
            std::fprintf(stderr, "warning: exchange delivered nothing\n");
    });
}

Stage_result bench_exchange_telemetry(double min_seconds, bool quick)
{
    // The exact-profile exchange with full telemetry collection bound,
    // exactly as the executor binds it per worker.  The rate gap to
    // `alice_bob_exchange` is the end-to-end overhead of the obs layer
    // (OBSERVABILITY.md "Overhead"), gated by --max-telemetry-overhead.
    sim::Alice_bob_config config;
    config.payload_bits = 2048;
    config.exchanges = quick ? 2 : 4;
    config.snr_db = bench_snr_db;
    config.math_profile = dsp::Math_profile::exact;
    config.seed = 12345;

    const sim::Alice_bob_result probe = sim::run_alice_bob_anc(config);
    const auto samples = static_cast<std::uint64_t>(probe.metrics.airtime_symbols);

    obs::Recorder recorder;
    const obs::Recorder::Bind bind{recorder};
    return time_stage("alice_bob_exchange_telemetry", samples, 1, min_seconds, [&] {
        recorder.begin_task();
        const sim::Alice_bob_result result = sim::run_alice_bob_anc(config);
        if (result.metrics.packets_delivered == 0)
            std::fprintf(stderr, "warning: exchange delivered nothing\n");
    });
}

// ----------------------------------------------------------------- JSON

void write_json(std::ostream& out, const std::vector<Stage_result>& stages,
                long pr_number)
{
    out << "{\"schema\": \"anc.bench.dsp.v1\",\n";
    if (pr_number >= 0)
        out << " \"pr\": " << pr_number << ",\n";
    out << " \"workload\": {\"frame_bits\": " << bench_frame_bits
        << ", \"snr_db\": " << bench_snr_db << ", \"simd_backend\": \""
        << anc::simd::to_string(anc::simd::active_backend()) << "\"},\n";
    out << " \"stages\": {";
    bool first = true;
    char buffer[64];
    for (const Stage_result& stage : stages) {
        if (!first)
            out << ",";
        first = false;
        std::snprintf(buffer, sizeof buffer, "%.17g", stage.samples_per_sec);
        out << "\n  \"" << stage.name << "\": {"
            << "\"samples_per_sec\": " << buffer
            << ", \"samples_per_iteration\": " << stage.samples_per_iteration
            << ", \"iterations\": " << stage.iterations
            << ", \"heap_allocs_per_iteration\": " << stage.heap_allocs_per_iteration
            << "}";
    }
    out << "\n }}\n";
}

/// Minimal extraction of "<stage>": {"samples_per_sec": <number> from a
/// baseline document written by write_json (not a general JSON parser).
bool baseline_rate(const std::string& text, const std::string& stage, double& rate)
{
    const std::string key = "\"" + stage + "\": {\"samples_per_sec\": ";
    const std::size_t at = text.find(key);
    if (at == std::string::npos)
        return false;
    rate = std::strtod(text.c_str() + at + key.size(), nullptr);
    return rate > 0.0;
}

// ----------------------------------------------------- trajectory check

/// Validate one anc.bench.dsp.v1 snapshot: schema, "pr" stamp, workload
/// echo, and well-formed stage entries (every samples_per_sec positive).
/// Uses the same string-search approach as baseline_rate — the documents
/// are machine-written by write_json, not arbitrary JSON.
bool check_snapshot(const std::string& path, const std::string& text, long& pr_out)
{
    const auto fail = [&](const char* what) {
        std::fprintf(stderr, "error: %s: %s\n", path.c_str(), what);
        return false;
    };
    if (text.find("\"schema\": \"anc.bench.dsp.v1\"") == std::string::npos)
        return fail("missing or wrong \"schema\" (want anc.bench.dsp.v1)");
    const std::string pr_key = "\"pr\": ";
    const std::size_t pr_at = text.find(pr_key);
    if (pr_at == std::string::npos)
        return fail("missing \"pr\" stamp (write snapshots with --pr N)");
    pr_out = std::strtol(text.c_str() + pr_at + pr_key.size(), nullptr, 10);
    if (pr_out <= 0)
        return fail("\"pr\" stamp must be a positive integer");
    if (text.find("\"workload\":") == std::string::npos)
        return fail("missing \"workload\" echo");
    if (text.find("\"stages\":") == std::string::npos)
        return fail("missing \"stages\" object");

    const std::string rate_key = "\"samples_per_sec\": ";
    std::size_t stage_count = 0;
    for (std::size_t at = text.find(rate_key); at != std::string::npos;
         at = text.find(rate_key, at + rate_key.size())) {
        const double rate = std::strtod(text.c_str() + at + rate_key.size(), nullptr);
        if (!(rate > 0.0))
            return fail("a stage has a non-positive samples_per_sec");
        ++stage_count;
    }
    if (stage_count == 0)
        return fail("no stage entries found");
    std::printf("ok: %s (pr %ld, %zu stages)\n", path.c_str(), pr_out, stage_count);
    return true;
}

/// --check-trajectory driver: every file valid, pr strictly increasing
/// across the files in the order given.
int check_trajectory(const std::vector<std::string>& paths)
{
    long previous_pr = 0;
    for (const std::string& path : paths) {
        std::ifstream in{path};
        if (!in) {
            std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        long pr = 0;
        if (!check_snapshot(path, buffer.str(), pr))
            return 1;
        if (pr <= previous_pr) {
            std::fprintf(stderr,
                         "error: %s: pr %ld not greater than preceding snapshot's %ld "
                         "(trajectory must be chronological)\n",
                         path.c_str(), pr, previous_pr);
            return 1;
        }
        previous_pr = pr;
    }
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    std::string json_path;
    std::string baseline_path;
    std::string stage_filter;
    std::vector<std::string> trajectory_paths;
    double min_ratio = 0.75;
    double min_fast_gain = 0.0;
    double min_simd_gain = 0.0;
    double max_telemetry_overhead = 0.0;
    long pr_number = -1;
    bool normalize = false;
    bool quick = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc)
            json_path = argv[++i];
        else if (arg == "--baseline" && i + 1 < argc)
            baseline_path = argv[++i];
        else if (arg == "--min-ratio" && i + 1 < argc)
            min_ratio = std::strtod(argv[++i], nullptr);
        else if (arg == "--min-fast-gain" && i + 1 < argc)
            min_fast_gain = std::strtod(argv[++i], nullptr);
        else if (arg == "--min-simd-gain" && i + 1 < argc)
            min_simd_gain = std::strtod(argv[++i], nullptr);
        else if (arg == "--max-telemetry-overhead" && i + 1 < argc)
            max_telemetry_overhead = std::strtod(argv[++i], nullptr);
        else if (arg == "--stages" && i + 1 < argc)
            stage_filter = argv[++i];
        else if (arg == "--pr" && i + 1 < argc)
            pr_number = std::strtol(argv[++i], nullptr, 10);
        else if (arg == "--check-trajectory" && i + 1 < argc)
            trajectory_paths.push_back(argv[++i]);
        else if (arg == "--normalize")
            normalize = true;
        else if (arg == "--quick")
            quick = true;
        else {
            std::fprintf(stderr,
                         "usage: %s [--json PATH] [--baseline PATH] "
                         "[--min-ratio R] [--normalize] [--quick] "
                         "[--min-fast-gain R] [--min-simd-gain R] "
                         "[--max-telemetry-overhead PCT] "
                         "[--stages a,b,c] [--pr N] "
                         "[--check-trajectory PATH]...\n",
                         argv[0]);
            return 2;
        }
    }

    // Validation mode: check the snapshot files and exit — no benching.
    if (!trajectory_paths.empty())
        return check_trajectory(trajectory_paths);

    const double min_seconds = quick ? 0.1 : 0.5;

    constexpr dsp::Math_profile exact = dsp::Math_profile::exact;
    constexpr dsp::Math_profile fast = dsp::Math_profile::fast;
    constexpr dsp::Math_profile simd = dsp::Math_profile::simd;

    // The stage registry, in canonical (table and baseline) order.  The
    // --stages filter selects by name; unknown names are an error so a
    // typo'd CI job cannot silently measure nothing.
    struct Stage_def {
        const char* name;
        Stage_result (*run)(double, bool);
    };
    const Stage_def defs[] = {
        {"modulate", [](double s, bool) { return bench_modulate(s, exact); }},
        {"modulate_fast", [](double s, bool) { return bench_modulate(s, fast); }},
        {"modulate_simd", [](double s, bool) { return bench_modulate(s, simd); }},
        {"mix", [](double s, bool) { return bench_mix(s, exact); }},
        {"mix_fast", [](double s, bool) { return bench_mix(s, fast); }},
        {"mix_simd", [](double s, bool) { return bench_mix(s, simd); }},
        {"fading_mix", [](double s, bool) { return bench_fading_mix(s); }},
        {"relay", [](double s, bool) { return bench_relay(s); }},
        {"demodulate", [](double s, bool) { return bench_demodulate(s); }},
        {"pilot_search", [](double s, bool) { return bench_pilot_search(s, false); }},
        {"pilot_search_packed",
         [](double s, bool) { return bench_pilot_search(s, true); }},
        {"interference_decode",
         [](double s, bool) { return bench_interference_decode(s, exact); }},
        {"interference_decode_fast",
         [](double s, bool) { return bench_interference_decode(s, fast); }},
        {"interference_decode_simd",
         [](double s, bool) { return bench_interference_decode(s, simd); }},
        {"alice_bob_exchange",
         [](double s, bool q) { return bench_exchange(s, q, exact); }},
        {"alice_bob_exchange_fast",
         [](double s, bool q) { return bench_exchange(s, q, fast); }},
        {"alice_bob_exchange_simd",
         [](double s, bool q) { return bench_exchange(s, q, simd); }},
        {"alice_bob_exchange_telemetry",
         [](double s, bool q) { return bench_exchange_telemetry(s, q); }},
    };

    std::vector<std::string> wanted;
    if (!stage_filter.empty()) {
        std::size_t pos = 0;
        while (pos <= stage_filter.size()) {
            const std::size_t comma = stage_filter.find(',', pos);
            const std::string name =
                stage_filter.substr(pos, comma == std::string::npos
                                             ? std::string::npos
                                             : comma - pos);
            if (!name.empty())
                wanted.push_back(name);
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        for (const std::string& name : wanted) {
            const bool known =
                std::any_of(std::begin(defs), std::end(defs),
                            [&](const Stage_def& def) { return name == def.name; });
            if (!known) {
                std::fprintf(stderr, "error: unknown stage \"%s\"\n", name.c_str());
                return 2;
            }
        }
    }
    const auto selected = [&](const char* name) {
        return wanted.empty()
               || std::find(wanted.begin(), wanted.end(), name) != wanted.end();
    };

    std::vector<Stage_result> stages;
    for (const Stage_def& def : defs)
        if (selected(def.name))
            stages.push_back(def.run(min_seconds, quick));

    std::printf("%-20s %16s %12s %10s %8s\n", "stage", "samples/sec", "samples/iter",
                "iters", "allocs");
    bool alloc_violation = false;
    for (const Stage_result& stage : stages) {
        std::printf("%-20s %16.0f %12llu %10llu %8llu\n", stage.name.c_str(),
                    stage.samples_per_sec,
                    static_cast<unsigned long long>(stage.samples_per_iteration),
                    static_cast<unsigned long long>(stage.iterations),
                    static_cast<unsigned long long>(stage.heap_allocs_per_iteration));
        // The sample-pipeline kernels must be allocation-free on a warm
        // workspace (PERF.md); the full exchanges (both profiles) are
        // exempt — their packet bookkeeping (frames, payloads, flows)
        // escapes by design.
        if (stage.name.rfind("alice_bob_exchange", 0) != 0
            && stage.heap_allocs_per_iteration != 0)
            alloc_violation = true;
    }
    if (alloc_violation) {
        std::fprintf(stderr,
                     "error: a sample-pipeline stage allocated on a warm workspace "
                     "(zero-allocation invariant, see PERF.md)\n");
        return 1;
    }

    // The relaxed profiles' end-to-end payoff, printed always and gated
    // by --min-fast-gain (fast vs exact) and --min-simd-gain (simd vs
    // fast — the backend's own contribution on top of the fast
    // kernels).  The gates fire *after* the JSON write below, so a
    // failing run still leaves its diagnostic artifact — same contract
    // as the baseline gate.
    bool gain_failed = false;
    {
        const auto e2e_rate = [&](const char* name) {
            for (const Stage_result& stage : stages)
                if (stage.name == name)
                    return stage.samples_per_sec;
            return 0.0;
        };
        const double exact_e2e = e2e_rate("alice_bob_exchange");
        const double fast_e2e = e2e_rate("alice_bob_exchange_fast");
        const double simd_e2e = e2e_rate("alice_bob_exchange_simd");
        const double pilot_scalar = e2e_rate("pilot_search");
        const double pilot_packed = e2e_rate("pilot_search_packed");
        if (pilot_scalar > 0.0 && pilot_packed > 0.0)
            std::printf("\npacked pilot search gain: %.2fx (%.0f -> %.0f bits/s)\n",
                        pilot_packed / pilot_scalar, pilot_scalar, pilot_packed);
        if (exact_e2e > 0.0 && fast_e2e > 0.0) {
            const double gain = fast_e2e / exact_e2e;
            std::printf("\nfast profile e2e gain: %.2fx (%.0f -> %.0f samples/s)\n",
                        gain, exact_e2e, fast_e2e);
            if (min_fast_gain > 0.0 && gain < min_fast_gain) {
                std::fprintf(stderr,
                             "error: fast e2e gain %.2fx below required %.2fx\n",
                             gain, min_fast_gain);
                gain_failed = true;
            }
        }
        if (simd_e2e > 0.0 && exact_e2e > 0.0)
            std::printf("simd profile e2e gain vs exact: %.2fx (%.0f -> %.0f "
                        "samples/s, backend %s)\n",
                        simd_e2e / exact_e2e, exact_e2e, simd_e2e,
                        anc::simd::to_string(anc::simd::active_backend()));
        if (min_simd_gain > 0.0) {
            if (!anc::simd::kernels_active()) {
                // Visible skip, not silence: without AVX2 (or with
                // ANC_FORCE_SCALAR_SIMD set) the simd profile resolves to
                // the scalar fallback and there is no hardware gain to
                // demand — the run still validates correctness.
                std::printf("notice: --min-simd-gain skipped (simd backend "
                            "resolved to scalar: %s)\n",
                            anc::cpu_features().avx2 && anc::cpu_features().fma
                                ? "ANC_FORCE_SCALAR_SIMD set"
                                : "CPU lacks AVX2+FMA");
            } else if (simd_e2e > 0.0 && fast_e2e > 0.0) {
                if (anc::simd::active_backend() != anc::simd::Backend::avx512) {
                    // Visible note, mirroring the scalar-resolve notice:
                    // the gate still runs, but against the avx2 lanes —
                    // the widest tier is not being exercised here.
                    std::printf("notice: --min-simd-gain measuring the avx2 "
                                "backend, not avx512 (%s)\n",
                                anc::cpu_features().avx512f
                                    ? "ANC_FORCE_AVX2_SIMD set"
                                    : "CPU lacks avx512f");
                }
                const double gain = simd_e2e / fast_e2e;
                std::printf("simd profile e2e gain vs fast: %.2fx\n", gain);
                if (gain < min_simd_gain) {
                    std::fprintf(stderr,
                                 "error: simd e2e gain %.2fx over fast below "
                                 "required %.2fx\n",
                                 gain, min_simd_gain);
                    gain_failed = true;
                }
            }
        }

        // Telemetry overhead: how much the fully-instrumented exchange
        // trails the plain one.  Negative readings are measurement noise
        // (the instrumented run happened to win a window) — report 0.
        const double telemetry_e2e = e2e_rate("alice_bob_exchange_telemetry");
        if (exact_e2e > 0.0 && telemetry_e2e > 0.0) {
            const double overhead_pct =
                std::max(0.0, (1.0 - telemetry_e2e / exact_e2e) * 100.0);
            std::printf("telemetry e2e overhead: %.2f%% (%.0f -> %.0f samples/s)\n",
                        overhead_pct, exact_e2e, telemetry_e2e);
            if (max_telemetry_overhead > 0.0 && overhead_pct > max_telemetry_overhead) {
                std::fprintf(stderr,
                             "error: telemetry overhead %.2f%% above allowed %.2f%%\n",
                             overhead_pct, max_telemetry_overhead);
                gain_failed = true;
            }
        }
    }

    if (!json_path.empty()) {
        std::ofstream out{json_path};
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
            return 2;
        }
        write_json(out, stages, pr_number);
        std::printf("\nwrote %s\n", json_path.c_str());
    }

    if (!baseline_path.empty()) {
        std::ifstream in{baseline_path};
        if (!in) {
            std::fprintf(stderr, "error: cannot read baseline %s\n",
                         baseline_path.c_str());
            return 2;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        const std::string baseline = buffer.str();

        // First pass: collect the per-stage ratios.  A stage missing
        // from the baseline fails the gate — otherwise a renamed stage
        // or a stale baseline would make the whole check vacuous.
        std::vector<std::pair<const Stage_result*, double>> ratios;
        bool missing = false;
        for (const Stage_result& stage : stages) {
            double expected = 0.0;
            if (baseline_rate(baseline, stage.name, expected)) {
                ratios.emplace_back(&stage, stage.samples_per_sec / expected);
            } else {
                std::fprintf(stderr, "error: stage \"%s\" not in baseline %s\n",
                             stage.name.c_str(), baseline_path.c_str());
                missing = true;
            }
        }
        if (missing || ratios.empty())
            return 1;
        double scale = 1.0;
        if (normalize && !ratios.empty()) {
            // Median ratio = the machine-speed factor; dividing it out
            // leaves only *relative* stage regressions.
            std::vector<double> sorted;
            for (const auto& [stage, ratio] : ratios)
                sorted.push_back(ratio);
            std::sort(sorted.begin(), sorted.end());
            scale = sorted[sorted.size() / 2];
            std::printf("\nnormalizing by median ratio %.3f\n", scale);
        }

        bool failed = false;
        std::printf("\n%-20s %16s %16s %8s\n", "stage", "baseline", "measured", "ratio");
        for (const auto& [stage, raw_ratio] : ratios) {
            const double ratio = raw_ratio / scale;
            std::printf("%-20s %16.0f %16.0f %8.2f%s\n", stage->name.c_str(),
                        stage->samples_per_sec / raw_ratio, stage->samples_per_sec,
                        ratio, ratio < min_ratio ? "  REGRESSION" : "");
            if (ratio < min_ratio)
                failed = true;
        }
        if (failed) {
            std::fprintf(stderr,
                         "error: throughput regressed more than %.0f%% on at least "
                         "one stage\n",
                         (1.0 - min_ratio) * 100.0);
            return 1;
        }
    }
    return gain_failed ? 1 : 0;
}
