// Shared command-line plumbing for the sweep front-ends (bench/anc_sweep
// and bench/anc_coordinator): axis parsing, the grid-flag table, the
// TTY progress line, and the atomic streaming file.
//
// The two CLIs must agree on every grid flag byte for byte — the
// coordinator forwards its grid flags verbatim to the `anc_sweep`
// workers it spawns, and journal compatibility hinges on both sides
// expanding the identical grid (the fingerprint in every anc.journal.v1
// header).  One table, two binaries.

#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "engine/engine.h"
#include "util/rate_limiter.h"

namespace anc::bench {

/// Parse LIST as doubles: "a,b,c" or "start:stop:step" (stop inclusive
/// when the lattice lands on it; step > 0).
inline std::vector<double> parse_axis(const std::string& text)
{
    std::vector<double> values;
    const std::size_t colon = text.find(':');
    if (colon != std::string::npos) {
        const std::size_t colon2 = text.find(':', colon + 1);
        if (colon2 == std::string::npos)
            throw std::invalid_argument{"range must be start:stop:step: " + text};
        const double start = std::stod(text.substr(0, colon));
        const double stop = std::stod(text.substr(colon + 1, colon2 - colon - 1));
        const double step = std::stod(text.substr(colon2 + 1));
        if (step <= 0.0)
            throw std::invalid_argument{"range step must be positive: " + text};
        // Half-step slack keeps "16:35:2" ending on 34 and "16:34:2" on
        // 34 too, without accumulating error over long ranges.
        for (double v = start; v <= stop + step * 0.5; v += step)
            values.push_back(v);
        // An inverted (or NaN) range yields nothing; fail it here with
        // the offending text instead of letting grid expansion report a
        // bare "empty axis".
        if (values.empty())
            throw std::invalid_argument{"empty range (start > stop?): " + text};
        return values;
    }
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::string item = text.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!item.empty())
            values.push_back(std::stod(item));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (values.empty())
        throw std::invalid_argument{"empty axis value: " + text};
    return values;
}

inline std::vector<std::size_t> parse_size_axis(const std::string& text)
{
    std::vector<std::size_t> values;
    for (const double v : parse_axis(text)) {
        if (v < 0.0)
            throw std::invalid_argument{"axis value must be non-negative: " + text};
        values.push_back(static_cast<std::size_t>(v + 0.5));
    }
    return values;
}

inline std::vector<dsp::Math_profile> parse_profiles(const std::string& text)
{
    if (text == "both")
        return {dsp::Math_profile::exact, dsp::Math_profile::fast};
    if (text == "all")
        return {dsp::Math_profile::exact, dsp::Math_profile::fast,
                dsp::Math_profile::simd};
    std::vector<dsp::Math_profile> profiles;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::string item = text.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!item.empty())
            profiles.push_back(dsp::math_profile_from_string(item));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (profiles.empty())
        throw std::invalid_argument{"empty --math-profile value"};
    return profiles;
}

inline std::vector<std::string> parse_path_list(const std::string& text)
{
    std::vector<std::string> paths;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::string item = text.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!item.empty())
            paths.push_back(item);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return paths;
}

/// "K/N" -> (K, N), validated 1 <= K <= N.
inline std::pair<std::size_t, std::size_t> parse_shard(const std::string& text)
{
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos)
        throw std::invalid_argument{"--shard wants K/N, got: " + text};
    const unsigned long k = std::strtoul(text.substr(0, slash).c_str(), nullptr, 10);
    const unsigned long n = std::strtoul(text.substr(slash + 1).c_str(), nullptr, 10);
    if (k < 1 || n < 1 || k > n)
        throw std::invalid_argument{"--shard wants 1 <= K <= N, got: " + text};
    return {k, n};
}

/// The grid-flag table both sweeping CLIs share.  try_parse consumes a
/// grid axis flag (or --repetitions / --seed), records the raw tokens
/// in forwarded() so a supervisor can replay them verbatim on a worker
/// command line, and returns false for flags it does not own.
class Grid_cli {
public:
    explicit Grid_cli(engine::Sweep_grid& grid) : grid_{&grid} {}

    bool try_parse(const std::string& arg,
                   const std::function<std::string()>& value)
    {
        const auto take = [&](auto parse_into) {
            const std::string text = value();
            parse_into(text);
            forwarded_.push_back(arg);
            forwarded_.push_back(text);
            return true;
        };
        if (arg == "--scenario")
            return take([&](const std::string& v) { grid_->scenarios.push_back(v); });
        if (arg == "--scheme")
            return take([&](const std::string& v) { grid_->schemes.push_back(v); });
        if (arg == "--snr")
            return take([&](const std::string& v) { grid_->snr_db = parse_axis(v); });
        if (arg == "--alice-amplitude")
            return take(
                [&](const std::string& v) { grid_->alice_amplitudes = parse_axis(v); });
        if (arg == "--bob-amplitude")
            return take(
                [&](const std::string& v) { grid_->bob_amplitudes = parse_axis(v); });
        if (arg == "--payload-bits")
            return take(
                [&](const std::string& v) { grid_->payload_bits = parse_size_axis(v); });
        if (arg == "--exchanges")
            return take(
                [&](const std::string& v) { grid_->exchanges = parse_size_axis(v); });
        if (arg == "--detector-threshold")
            return take([&](const std::string& v) {
                grid_->detector_thresholds_db = parse_axis(v);
            });
        if (arg == "--interleave-rows")
            return take([&](const std::string& v) {
                grid_->interleave_rows = parse_size_axis(v);
            });
        if (arg == "--coherence-block")
            return take([&](const std::string& v) {
                grid_->coherence_blocks = parse_size_axis(v);
            });
        if (arg == "--mean-link-gain")
            return take(
                [&](const std::string& v) { grid_->mean_link_gains = parse_axis(v); });
        if (arg == "--math-profile")
            return take(
                [&](const std::string& v) { grid_->math_profiles = parse_profiles(v); });
        if (arg == "--repetitions")
            return take([&](const std::string& v) {
                grid_->repetitions = parse_size_axis(v).front();
            });
        if (arg == "--seed")
            return take([&](const std::string& v) {
                base_seed = std::strtoull(v.c_str(), nullptr, 10);
            });
        return false;
    }

    /// The raw grid tokens in parse order, for verbatim forwarding.
    const std::vector<std::string>& forwarded() const { return forwarded_; }

    std::uint64_t base_seed = 1;

    /// The usage-text block describing the flags this table owns.
    static constexpr const char* usage_text =
        "grid axes (LIST = comma list or start:stop:step range):\n"
        "  --scenario NAME        registry scenario; repeatable\n"
        "  --scheme NAME          restrict to this scheme; repeatable\n"
        "  --snr LIST             SNR sweep in dB (default 25)\n"
        "  --alice-amplitude LIST / --bob-amplitude LIST\n"
        "  --payload-bits LIST    payload size axis (default 2048)\n"
        "  --exchanges LIST       packet pairs per run (default 25)\n"
        "  --detector-threshold LIST  interference variance threshold, dB\n"
        "  --interleave-rows LIST     FEC interleaver depth (0 = off)\n"
        "  --coherence-block LIST     fading coherence block, samples\n"
        "  --mean-link-gain LIST      fading link-gain multiplier\n"
        "  --math-profile LIST    exact|fast|simd, or both|all (default exact)\n"
        "  --repetitions N        independent runs per point (default 1)\n"
        "  --seed N               base seed for the deterministic runs\n";

private:
    engine::Sweep_grid* grid_;
    std::vector<std::string> forwarded_;
};

/// The stderr progress line: "\r  123/4096 tasks  41.0/s  ETA 97s".
/// Called once per finished task (serialized, never concurrently);
/// redraws are gated through a Rate_limiter to ~10 per second so
/// terminal I/O never becomes the run's bottleneck, and the final task
/// always draws so the line ends at 100%.
class Progress_line {
public:
    void operator()(std::size_t done, std::size_t total)
    {
        if (done != total && !redraw_gate_.ready())
            return;
        const double elapsed =
            std::chrono::duration<double>(clock::now() - start_).count();
        const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
        const double eta = rate > 0.0 ? static_cast<double>(total - done) / rate : 0.0;
        std::fprintf(stderr, "\r%6zu/%zu tasks  %6.1f/s  ETA %5.0fs ", done, total,
                     rate, eta);
        if (done == total)
            std::fputc('\n', stderr);
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_ = clock::now();
    Rate_limiter redraw_gate_{std::chrono::milliseconds{100}};
};

/// A file that streams row by row but still publishes atomically: rows
/// go to `<path>.tmp.<pid>`, and commit() renames onto the final path.
/// An uncommitted (crashed/failed) stream leaves at most a temp file,
/// removed by the destructor when possible.
class Stream_file {
public:
    explicit Stream_file(const std::string& path)
        : path_{path}, tmp_{path + ".tmp." + std::to_string(::getpid())}, out_{tmp_}
    {
        if (!out_)
            throw std::runtime_error{"cannot write " + tmp_};
    }

    ~Stream_file()
    {
        if (!committed_) {
            out_.close();
            std::remove(tmp_.c_str());
        }
    }

    std::ostream& stream() { return out_; }

    void commit()
    {
        out_.flush();
        if (!out_)
            throw std::runtime_error{"write failed on " + tmp_};
        out_.close();
        if (std::rename(tmp_.c_str(), path_.c_str()) != 0)
            throw std::runtime_error{"cannot rename " + tmp_ + " to " + path_};
        committed_ = true;
    }

private:
    std::string path_;
    std::string tmp_;
    std::ofstream out_;
    bool committed_ = false;
};

} // namespace anc::bench
