// Fading sweep: the general-ANC scenarios (Rahimian et al., PAPERS.md)
// over Rayleigh block-fading links, on the sweep engine.
//
// Sweeps (SNR x coherence block x mean link gain) for the alice_bob and
// x_topology fading scenarios, ANC against the traditional baseline
// under *identical* fading realizations (scheme-collapsed seeds), and
// reports delivery, residual BER, and the per-run paired gain.
//
// The interesting axis is the coherence block: once a fade boundary
// lands inside a frame, the differential MSK decode breaks at the
// boundary and CRC-gated clean delivery collapses, while ANC degrades
// more gracefully (its BER is measured on identity-matched decodes).
// Blocks covering a whole round (>= 4096 samples) behave quasi-static.
//
// ANC_ENGINE_JSON / ANC_ENGINE_CSV emit the full sweep document (CI
// uploads the JSON as a workflow artifact).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"

namespace {

using namespace anc;
using namespace anc::engine;

/// p50 of the point's recorded per-block |h| series (the channel-state
/// CDF every fading run now carries in Scenario_result); 0 when absent.
double fade_p50(const Point_summary& point)
{
    const auto it = point.series.find("fade_magnitude");
    return it == point.series.end() || it->second.empty() ? 0.0
                                                          : it->second.quantile(0.5);
}

/// Mean per-run gain of anc over traditional at one grid point; 0 when
/// the baseline delivered nothing anywhere (deep-fade regimes kill
/// whole traditional runs, which is the story, not an error).
double mean_gain(const std::vector<Task_result>& tasks, const Point_key& anc_key)
{
    Point_key traditional_key = anc_key;
    traditional_key.scheme = "traditional";
    const Cdf gains =
        paired_gain(tasks, anc_key, traditional_key, Baseline_policy::skip_failed);
    return gains.empty() ? 0.0 : gains.mean();
}

} // namespace

int main()
{
    bench::print_header("Fading", "Rayleigh block fading, ANC vs traditional (general ANC)");

    const std::size_t runs = bench::run_count(6);
    const std::size_t exchanges = bench::exchange_count();
    const std::vector<double> snrs{22.0, 25.0, 30.0};
    const std::vector<std::size_t> blocks{512, 2048, 4096};
    const std::vector<double> link_gains{0.8, 1.0};

    Sweep_grid grid;
    // exact by default; ANC_MATH_PROFILE=fast|both adds the fast profile
    // (profile-tagged rows; the CI fast-profile job uses this).
    grid.math_profiles = bench::math_profiles_from_env();
    grid.scenarios = {"alice_bob_fading", "x_topology_fading"};
    grid.schemes = {"anc", "traditional"};
    grid.snr_db = snrs;
    grid.coherence_blocks = blocks;
    grid.mean_link_gains = link_gains;
    grid.exchanges = {exchanges};
    grid.repetitions = runs;

    Executor_config exec;
    exec.base_seed = 17000;
    const Sweep_outcome outcome = run_grid(grid, exec);
    bench::print_engine_note(outcome.tasks.size(), exec);

    for (const char* scenario : {"alice_bob_fading", "x_topology_fading"}) {
        std::printf("\n%s\n", scenario);
        std::printf("%8s %10s %11s %8s %10s %10s %10s %16s\n", "SNR(dB)", "coherence",
                    "gain scale", "profile", "anc deliv", "anc BER", "|h| p50",
                    "gain vs trad");
        for (const double snr : snrs) {
            for (const std::size_t block : blocks) {
                for (const double link_gain : link_gains) {
                    for (const Point_summary& point : outcome.points) {
                        if (point.key.scenario != scenario || point.key.scheme != "anc"
                            || point.key.snr_db != snr
                            || point.key.coherence_block != block
                            || point.key.mean_link_gain != link_gain)
                            continue;
                        // One row per profile-tagged point: under
                        // ANC_MATH_PROFILE=both, exact and fast print as
                        // adjacent labeled rows (the paired-corridor view).
                        std::printf("%8.0f %10zu %11.2f %8s %10.2f %10.4f %10.3f %16.3f\n",
                                    snr, block, link_gain,
                                    dsp::to_string(point.key.math_profile),
                                    point.delivery_rate.mean(),
                                    point.run_mean_ber.mean(), fade_p50(point),
                                    mean_gain(outcome.tasks, point.key));
                    }
                }
            }
        }
    }
    std::printf("\nQuasi-static fades (blocks >= one round) keep the paper's ANC gain;\n"
                "fade boundaries inside a frame break the differential decode and\n"
                "collapse CRC-gated clean delivery first, so the paired gain column\n"
                "is where the schemes' robustness difference shows.\n");
    return 0;
}
