// anc_coordinator — multi-process sweep supervision over anc_sweep
// (ENGINE.md "Coordinator"): partition the grid into S shards, keep up
// to N `anc_sweep --shard K/S --journal` worker processes running, tail
// their journals for liveness, SIGKILL and reassign stalled or crashed
// workers (--resume, so finished tasks never recompute), steal pending
// shards onto idle workers when S > N, and continuously merge the shard
// journals into the same artifacts anc_sweep itself would emit —
// byte-identical to one uninterrupted single-process run.
//
//   anc_coordinator --worker build/bench/anc_sweep --workers 4 --shards 8
//       --work-dir /tmp/run --scenario alice_bob --snr 16:34:2 --json out.json
//
// The grid flags are the same table anc_sweep parses (bench/sweep_cli.h)
// and are forwarded verbatim to every worker, so the workers' journal
// headers fingerprint-match the coordinator's grid by construction.
// Shard journals and per-worker stderr logs land in --work-dir; rerunning
// the coordinator over a populated work dir resumes it (complete shard
// journals are adopted without relaunching anything).
//
// Exit codes mirror anc_sweep: 0 success, 2 usage, 3 task errors or an
// incomplete merge (a shard burned its retries), 4 interrupted.  A
// one-line summary always lands on stderr, with the supervision counts
// (launches, reassignments, steals, watchdog kills) that the
// --metrics-json manifest reports in full (anc.metrics.v1 `coordinator`
// section, OBSERVABILITY.md).

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "sweep_cli.h"
#include "engine/coordinator.h"
#include "engine/engine.h"
#include "engine/jstream.h"
#include "engine/metrics.h"
#include "util/atomic_file.h"
#include "util/net.h"

namespace {

using namespace anc;
using namespace anc::bench;

std::atomic<bool> g_interrupted{false};

extern "C" void handle_signal(int)
{
    g_interrupted.store(true, std::memory_order_relaxed);
}

int usage(const char* argv0, const char* error = nullptr)
{
    if (error != nullptr)
        std::fprintf(stderr, "error: %s\n\n", error);
    std::fprintf(
        stderr,
        "usage: %s --worker BIN --work-dir DIR --scenario NAME [options]\n"
        "\n"
        "%s"
        "\n"
        "coordination:\n"
        "  --worker BIN           the anc_sweep binary to spawn (required)\n"
        "  --workers N            concurrent worker processes (default 2)\n"
        "  --shards S             shard count (default = workers; S > N\n"
        "                         enables work stealing)\n"
        "  --work-dir DIR         shard journals + worker logs (created if\n"
        "                         missing; rerun over it to resume)\n"
        "  --worker-threads N     --threads for each worker (default 1)\n"
        "  --heartbeat-ms MS      liveness watchdog: kill + reassign a worker\n"
        "                         whose journal stalls this long (default 30000)\n"
        "  --poll-ms MS           supervision poll cadence (default 25)\n"
        "  --shard-retries N      extra launches per shard after the first\n"
        "                         before declaring it failed (default 2)\n"
        "  --startup-timeout-ms MS  kill a worker that never writes its journal\n"
        "                         header within MS (default: --heartbeat-ms)\n"
        "  --relaunch-initial-ms MS / --relaunch-max-ms MS\n"
        "                         exponential backoff before relaunching a\n"
        "                         failed shard (defaults 100 / 5000)\n"
        "\n"
        "remote fleets (ENGINE.md \"Remote workers\"):\n"
        "  --listen PORT          accept anc.jstream.v1 worker streams (0 =\n"
        "                         ephemeral); mirrors land in --work-dir\n"
        "  --worker-stream H:P    address workers stream to (default with\n"
        "                         --listen: 127.0.0.1:<port>)\n"
        "  --worker-journal-dir D worker-side journal directory (default with\n"
        "                         --listen: <work-dir>/remote)\n"
        "  --launch-template CMD  run CMD through /bin/sh -c instead of\n"
        "                         exec'ing --worker; placeholders: {worker}\n"
        "                         {grid} {threads} {shard} {shards} {journal}\n"
        "                         {journal_flag} {stream} {attempt} {slot}\n"
        "\n"
        "output (same artifacts and bytes as a single anc_sweep run):\n"
        "  --json PATH / --csv PATH / --tasks-csv PATH\n"
        "  --metrics-json PATH    anc.metrics.v1 manifest with the\n"
        "                         `coordinator` liveness section\n"
        "  --stream               stream merged rows to --json/--tasks-csv as\n"
        "                         shards report them (O(window) memory)\n"
        "  --quiet                suppress the stdout table and progress line\n"
        "\n"
        "exit codes: 0 ok, 2 usage, 3 task errors or failed shards, 4 interrupted\n",
        argv0, Grid_cli::usage_text);
    return error == nullptr ? 0 : 2;
}

void print_summary_line(const engine::Coordinator_outcome& outcome, bool interrupted)
{
    const engine::Coordinator_stats& stats = outcome.stats;
    std::fprintf(stderr,
                 "anc_coordinator: %zu ok, %zu error, %zu skipped; "
                 "%zu launches, %zu reassignments, %zu steals, "
                 "%zu watchdog kills, %zu failed shards%s\n",
                 outcome.tally.ok, outcome.tally.errors, outcome.tally.skipped,
                 stats.launches, stats.reassignments, stats.steals,
                 stats.watchdog_kills, outcome.failed_shards,
                 interrupted ? " [interrupted]" : "");
}

} // namespace

int main(int argc, char** argv)
{
    engine::Sweep_grid grid;
    grid.scenarios.clear();
    Grid_cli grid_cli{grid};

    std::string worker_bin, work_dir;
    std::string json_path, csv_path, tasks_csv_path, metrics_json_path;
    engine::Coordinator_config config;
    std::size_t worker_threads = 1;
    std::size_t shard_retries = 2;
    std::string launch_template;
    bool listen = false;
    std::uint16_t listen_port = 0;
    bool stream = false;
    bool quiet = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const std::function<std::string()> value = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw std::invalid_argument{arg + " needs a value"};
                return argv[++i];
            };
            if (grid_cli.try_parse(arg, value))
                continue;
            if (arg == "--worker")
                worker_bin = value();
            else if (arg == "--workers")
                config.workers = parse_size_axis(value()).front();
            else if (arg == "--shards")
                config.shards = parse_size_axis(value()).front();
            else if (arg == "--work-dir")
                work_dir = value();
            else if (arg == "--worker-threads")
                worker_threads = parse_size_axis(value()).front();
            else if (arg == "--heartbeat-ms")
                config.heartbeat_timeout =
                    std::chrono::milliseconds{parse_size_axis(value()).front()};
            else if (arg == "--poll-ms")
                config.poll_interval =
                    std::chrono::milliseconds{parse_size_axis(value()).front()};
            else if (arg == "--shard-retries")
                shard_retries = parse_size_axis(value()).front();
            else if (arg == "--startup-timeout-ms")
                config.startup_timeout =
                    std::chrono::milliseconds{parse_size_axis(value()).front()};
            else if (arg == "--relaunch-initial-ms")
                config.relaunch_backoff.initial =
                    std::chrono::milliseconds{parse_size_axis(value()).front()};
            else if (arg == "--relaunch-max-ms")
                config.relaunch_backoff.max =
                    std::chrono::milliseconds{parse_size_axis(value()).front()};
            else if (arg == "--listen") {
                listen = true;
                listen_port =
                    static_cast<std::uint16_t>(parse_size_axis(value()).front());
            } else if (arg == "--worker-stream")
                config.worker_stream = value();
            else if (arg == "--worker-journal-dir")
                config.worker_journal_dir = value();
            else if (arg == "--launch-template")
                launch_template = value();
            else if (arg == "--json")
                json_path = value();
            else if (arg == "--csv")
                csv_path = value();
            else if (arg == "--tasks-csv")
                tasks_csv_path = value();
            else if (arg == "--metrics-json")
                metrics_json_path = value();
            else if (arg == "--stream")
                stream = true;
            else if (arg == "--quiet")
                quiet = true;
            else if (arg == "--help" || arg == "-h")
                return usage(argv[0]);
            else
                return usage(argv[0], ("unknown argument " + arg).c_str());
        }
        if (worker_bin.empty() && launch_template.empty())
            return usage(argv[0], "--worker BIN (or --launch-template) is required");
        if (work_dir.empty())
            return usage(argv[0], "--work-dir DIR is required");
        if (grid.scenarios.empty())
            return usage(argv[0], "at least one --scenario is required");
        if (config.workers == 0)
            return usage(argv[0], "--workers must be >= 1");
        if (::mkdir(work_dir.c_str(), 0755) != 0 && errno != EEXIST)
            return usage(argv[0],
                         ("cannot create --work-dir " + work_dir + ": "
                          + std::strerror(errno))
                             .c_str());

        const std::uint64_t base_seed = grid_cli.base_seed;
        config.work_dir = work_dir;
        config.max_shard_attempts = 1 + shard_retries;
        config.cancel = &g_interrupted;

        // Supervision state is always persisted: a coordinator that
        // dies mid-run and is rerun over the same work dir re-adopts
        // its fleet instead of relaunching finished work.
        config.fleet_path = work_dir + "/fleet.anf";

        // --listen: mirror remote journals into the work dir.  The
        // workers then journal somewhere ELSE (--worker-journal-dir,
        // default <work-dir>/remote) so a localhost fleet does not
        // stream a file onto itself.
        std::optional<engine::Jstream_listener> listener;
        if (listen) {
            const std::size_t shard_count =
                config.shards == 0 ? config.workers : config.shards;
            listener.emplace(listen_port, work_dir, shard_count);
            config.listener = &*listener;
            if (config.worker_stream.empty())
                config.worker_stream =
                    "127.0.0.1:" + std::to_string(listener->port());
            if (config.worker_journal_dir.empty())
                config.worker_journal_dir = work_dir + "/remote";
        }
        if (!config.worker_stream.empty()) {
            util::Host_port probe;
            if (!util::parse_host_port(config.worker_stream, probe))
                return usage(argv[0], ("--worker-stream: bad host:port '"
                                       + config.worker_stream + "'")
                                          .c_str());
        }
        if (!config.worker_journal_dir.empty()
            && ::mkdir(config.worker_journal_dir.c_str(), 0755) != 0
            && errno != EEXIST)
            return usage(argv[0], ("cannot create --worker-journal-dir "
                                   + config.worker_journal_dir + ": "
                                   + std::strerror(errno))
                                      .c_str());

        if (!launch_template.empty()) {
            // The CLI owns the run-invariant placeholders; the
            // per-request ones ({shard}, {journal}, ...) are
            // template_launcher's.
            const auto replace_all = [](std::string text, const std::string& key,
                                        const std::string& with) {
                for (std::size_t at = text.find(key); at != std::string::npos;
                     at = text.find(key, at + with.size()))
                    text.replace(at, key.size(), with);
                return text;
            };
            std::string grid_args;
            for (const std::string& flag : grid_cli.forwarded()) {
                if (!grid_args.empty())
                    grid_args += ' ';
                grid_args += flag;
            }
            std::string command = launch_template;
            command = replace_all(command, "{worker}", worker_bin);
            command = replace_all(command, "{grid}", grid_args);
            command =
                replace_all(command, "{threads}", std::to_string(worker_threads));
            config.launcher = engine::template_launcher(command, work_dir);
        } else {
            config.launcher = engine::exec_launcher(
                worker_bin, grid_cli.forwarded(), worker_threads, work_dir);
        }

        Progress_line progress;
        if (!quiet && isatty(fileno(stderr)))
            config.on_progress = [&progress](std::size_t done, std::size_t total) {
                progress(done, total);
            };

        // The merged-row sinks: identical wiring to anc_sweep --stream,
        // so the streamed artifacts are byte-identical to its output.
        std::optional<Stream_file> json_stream, tasks_csv_stream;
        std::optional<engine::Json_stream_writer> json_writer;
        std::optional<engine::Tasks_csv_stream_writer> csv_writer;
        engine::Aggregator aggregator;
        if (stream) {
            config.collect_results = false;
            if (!json_path.empty()) {
                json_stream.emplace(json_path);
                json_writer.emplace(json_stream->stream());
            }
            if (!tasks_csv_path.empty()) {
                tasks_csv_stream.emplace(tasks_csv_path);
                csv_writer.emplace(tasks_csv_stream->stream());
            }
            config.on_result = [&](const engine::Task_result& result) {
                // Aggregate BEFORE emitting (Aggregator::add sorts CDFs
                // in place) — the same order as the batch path, so
                // streamed and batch bytes match.
                aggregator.add(result);
                if (json_writer)
                    json_writer->add(result);
                if (csv_writer)
                    csv_writer->add(result);
            };
        }

        struct sigaction action{};
        action.sa_handler = handle_signal;
        sigaction(SIGINT, &action, nullptr);
        sigaction(SIGTERM, &action, nullptr);

        const engine::Scenario_registry& registry =
            engine::Scenario_registry::builtin();
        engine::Coordinator_outcome outcome =
            engine::run_coordinated(grid, registry, base_seed, config);
        const bool interrupted = g_interrupted.load(std::memory_order_relaxed);

        std::vector<engine::Point_summary> points;
        if (stream) {
            points = aggregator.take();
            if (json_writer) {
                json_writer->finish(points);
                json_stream->commit();
            }
            if (csv_writer)
                tasks_csv_stream->commit();
            if (!csv_path.empty())
                write_file_atomic(csv_path, [&](std::ostream& out) {
                    engine::write_summary_csv(out, points);
                });
        } else {
            points = engine::aggregate(outcome.results);
            if (!json_path.empty())
                write_file_atomic(json_path, [&](std::ostream& out) {
                    engine::write_json(out, outcome.results, points);
                });
            if (!csv_path.empty())
                write_file_atomic(csv_path, [&](std::ostream& out) {
                    engine::write_summary_csv(out, points);
                });
            if (!tasks_csv_path.empty())
                write_file_atomic(tasks_csv_path, [&](std::ostream& out) {
                    engine::write_tasks_csv(out, outcome.results);
                });
        }

        if (!quiet)
            engine::print_summary_table(stdout, points);
        if (!metrics_json_path.empty())
            write_file_atomic(metrics_json_path, [&](std::ostream& out) {
                engine::write_coordinator_metrics_json(
                    out, {.driver = "anc_coordinator", .base_seed = base_seed}, grid,
                    outcome);
                out << "\n";
            });

        print_summary_line(outcome, interrupted);
        if (interrupted)
            return 4;
        if (!outcome.completed || outcome.tally.errors > 0)
            return 3;
        return 0;
    } catch (const std::exception& error) {
        return usage(argv[0], error.what());
    }
}
