// Shared output helpers for the figure-reproduction benches.
//
// Each bench prints the same rows/series the paper's figure reports, a
// small CDF table, and a paper-vs-measured summary line, so the outputs
// can be pasted straight into EXPERIMENTS.md.

#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "dsp/math_profile.h"
#include "engine/engine.h"
#include "util/stats.h"

namespace anc::bench {

/// Math profiles a sweep should run, from the ANC_MATH_PROFILE
/// environment variable: "exact" (the default), "fast", "simd", "both"
/// (exact + fast), or "all" (exact + fast + simd).  Multi-profile values
/// emit profile-tagged rows for each; the axis is seed-collapsed, so the
/// tuples share channel realizations.  Every engine-backed bench driver
/// applies this, which is how the CI profile-matrix jobs rerun the
/// sweeps without bespoke flags.  Unknown values throw (via
/// math_profile_from_string).
inline std::vector<dsp::Math_profile> math_profiles_from_env()
{
    const char* env = std::getenv("ANC_MATH_PROFILE");
    if (env == nullptr || std::string_view{env} == "exact")
        return {dsp::Math_profile::exact};
    if (std::string_view{env} == "both")
        return {dsp::Math_profile::exact, dsp::Math_profile::fast};
    if (std::string_view{env} == "all")
        return {dsp::Math_profile::exact, dsp::Math_profile::fast,
                dsp::Math_profile::simd};
    return {dsp::math_profile_from_string(env)};
}

/// The summaries restricted to one math profile.  The figure drivers'
/// tables assume a single point per (scenario, scheme); under
/// ANC_MATH_PROFILE=both they print the *leading* profile's points while
/// the emitted JSON still carries every profile-tagged row.
inline std::vector<engine::Point_summary>
points_for_profile(const std::vector<engine::Point_summary>& points,
                   dsp::Math_profile profile)
{
    std::vector<engine::Point_summary> out;
    for (const engine::Point_summary& point : points)
        if (point.key.math_profile == profile)
            out.push_back(point);
    return out;
}

/// One line describing how the engine ran a sweep, so bench output
/// records the parallelism it used (results are identical either way).
inline void print_engine_note(std::size_t tasks, const engine::Executor_config& config)
{
    // Mirror the executor's cap: it never spawns more workers than tasks.
    const std::size_t threads =
        std::min(engine::resolve_thread_count(config), std::max<std::size_t>(tasks, 1));
    std::printf("[engine: %zu tasks on %zu threads, base seed %llu]\n", tasks, threads,
                static_cast<unsigned long long>(config.base_seed));
}

/// Number of runs (the paper repeats each experiment 40 times).  Scaled
/// down via the ANC_BENCH_RUNS environment variable for quick checks.
inline std::size_t run_count(std::size_t default_runs = 40)
{
    if (const char* env = std::getenv("ANC_BENCH_RUNS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<std::size_t>(parsed);
    }
    return default_runs;
}

/// Packet pairs (or packets) per run; the paper used 1000 per direction,
/// which is far more than needed for stable means in a deterministic
/// simulator.  Scaled via ANC_BENCH_EXCHANGES.
inline std::size_t exchange_count(std::size_t default_exchanges = 20)
{
    if (const char* env = std::getenv("ANC_BENCH_EXCHANGES")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<std::size_t>(parsed);
    }
    return default_exchanges;
}

inline void print_cdf(const std::string& title, const Cdf& cdf, const char* unit = "")
{
    if (cdf.empty()) {
        std::printf("%s: (no samples)\n", title.c_str());
        return;
    }
    std::printf("%s  (n=%zu, mean=%.4f%s)\n", title.c_str(), cdf.count(), cdf.mean(), unit);
    std::printf("  %-12s %s\n", "fraction", "value");
    for (const double q : {0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 1.00})
        std::printf("  %-12.2f %.4f\n", q, cdf.quantile(q));
}

inline void print_header(const char* figure, const char* description)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", figure, description);
    std::printf("==============================================================\n");
}

inline void print_compare(const char* metric, double paper, double measured)
{
    std::printf("  %-44s paper %-8.3f measured %-8.3f\n", metric, paper, measured);
}

} // namespace anc::bench
