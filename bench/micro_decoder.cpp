// Microbenchmarks for the ANC core: the Lemma 6.1 solver, amplitude
// estimators, the interference decoder, and the full receive pipeline.

#include <benchmark/benchmark.h>

#include "channel/awgn.h"
#include "channel/link.h"
#include "core/amplitude_estimator.h"
#include "core/anc_receiver.h"
#include "core/interference_decoder.h"
#include "core/phase_solver.h"
#include "core/relay.h"
#include "dsp/msk.h"
#include "dsp/ops.h"
#include "phy/modem.h"
#include "util/bits.h"
#include "util/rng.h"

namespace {

using namespace anc;

dsp::Signal make_mix(std::size_t bits, double a, double b, std::size_t offset)
{
    Pcg32 rng{11};
    const dsp::Msk_modulator mod_a{a, 0.2};
    const dsp::Msk_modulator mod_b{b, 1.4};
    chan::Link_params drift;
    drift.phase_drift = 0.004;
    dsp::Signal mix = mod_a.modulate(random_bits(bits, rng));
    dsp::accumulate(mix, chan::Link_channel{drift}.apply(mod_b.modulate(random_bits(bits, rng))),
                    offset);
    chan::Awgn noise{0.003, rng.fork(1)};
    noise.add_in_place(mix);
    return mix;
}

void bm_phase_solver(benchmark::State& state)
{
    const dsp::Sample y{0.9, 0.4};
    for (auto _ : state)
        benchmark::DoNotOptimize(solve_phases(y, 1.0, 0.8));
}
BENCHMARK(bm_phase_solver);

void bm_amplitude_mu_sigma(benchmark::State& state)
{
    const dsp::Signal mix = make_mix(2048, 1.0, 0.7, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(estimate_amplitudes(mix, 0.003));
    state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(bm_amplitude_mu_sigma);

void bm_amplitude_variance(benchmark::State& state)
{
    const dsp::Signal mix = make_mix(2048, 1.0, 0.7, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(estimate_amplitudes_by_variance(mix, 0.003));
    state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(bm_amplitude_variance);

void bm_interference_decode(benchmark::State& state)
{
    const auto bits = static_cast<std::size_t>(state.range(0));
    const dsp::Signal mix = make_mix(bits, 1.0, 0.9, 160);
    Pcg32 rng{12};
    const auto known_diffs = dsp::phase_differences_for_bits(random_bits(bits, rng));
    const Interference_decoder decoder;
    for (auto _ : state)
        benchmark::DoNotOptimize(decoder.decode(mix, known_diffs, 1.0, 0.9));
    state.SetItemsProcessed(state.iterations() * bits);
}
BENCHMARK(bm_interference_decode)->Arg(1024)->Arg(2048)->Arg(4096);

void bm_full_anc_receive(benchmark::State& state)
{
    // Full Algorithm 1 over a relay-forwarded Alice-Bob collision.
    const double noise_power = 0.003;
    Pcg32 rng{13};
    const phy::Modem modem;
    phy::Frame_header ha{1, 2, 1, 2048};
    phy::Frame_header hb{2, 1, 2, 2048};
    const Bits pa = random_bits(2048, rng);
    const Bits pb = random_bits(2048, rng);
    const Bits fa = modem.frame_bits(ha, pa);
    const Bits fb = modem.frame_bits(hb, pb);
    Sent_packet_buffer buffer;
    buffer.store({ha, fa, pa});

    dsp::Signal mix;
    dsp::accumulate(mix, chan::Link_channel{{0.95, 0.3, 0, 0.002}}.apply(modem.modulate(fa, 0.1)), 0);
    dsp::accumulate(mix, chan::Link_channel{{0.9, -0.9, 0, -0.002}}.apply(modem.modulate(fb, 0.9)), 280);
    chan::Awgn relay_noise{noise_power, rng.fork(1)};
    relay_noise.add_in_place(mix);
    const auto fwd = amplify_and_forward(mix, noise_power, 1.0);
    dsp::Signal at_alice = chan::Link_channel{{0.95, 1.1, 0, 0.0}}.apply(*fwd);
    chan::Awgn alice_noise{noise_power, rng.fork(2)};
    alice_noise.add_in_place(at_alice);

    const Anc_receiver receiver{Anc_receiver_config{}, noise_power};
    for (auto _ : state) {
        const auto outcome = receiver.receive(at_alice, buffer);
        benchmark::DoNotOptimize(outcome);
    }
    state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(bm_full_anc_receive);

void bm_relay_forward(benchmark::State& state)
{
    const dsp::Signal mix = make_mix(2048, 0.9, 0.85, 280);
    for (auto _ : state)
        benchmark::DoNotOptimize(amplify_and_forward(mix, 0.003, 1.0));
    state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(bm_relay_forward);

} // namespace

BENCHMARK_MAIN();
