// Figure 13: BER vs Signal-to-Interference Ratio for decoding at Alice.
//
// Bob's transmit power varies while Alice's stays fixed; SIR is the
// received power of the *wanted* signal (Bob's) over the interfering one
// (Alice's own).  The paper's headline: the decoder still works at
// -3 dB SIR (BER < 5%), where classical interference cancellation needs
// +6 dB (§11.7).
//
// Run at 20 dB SNR — the bottom of the operating band — so the residual
// BER is visible; at 25+ dB the simulated decoder is error-free across
// the whole SIR range.
//
// Runs on the sweep engine: the SIR axis is a grid over Bob's transmit
// amplitude, executed in parallel across all points and repetitions.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "util/db.h"

int main()
{
    using namespace anc;
    using namespace anc::engine;
    bench::print_header("Figure 13", "BER vs SIR for decoding at Alice");

    const std::size_t runs = bench::run_count(10);
    const std::size_t exchanges = bench::exchange_count();

    const std::vector<double> sir_points{-3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0, 4.0};
    Sweep_grid grid;
    // exact by default; ANC_MATH_PROFILE=fast|both adds the fast profile
    // (profile-tagged rows; the CI fast-profile job uses this).
    grid.math_profiles = bench::math_profiles_from_env();
    grid.scenarios = {"alice_bob"};
    grid.schemes = {"anc"};
    grid.snr_db = {20.0};
    grid.exchanges = {exchanges};
    grid.repetitions = runs;
    grid.bob_amplitudes.clear();
    for (const double sir_db : sir_points)
        grid.bob_amplitudes.push_back(amplitude_from_db(sir_db));

    Executor_config exec;
    exec.base_seed = 4000;
    const Sweep_outcome outcome = run_grid(grid, exec);
    bench::print_engine_note(outcome.tasks.size(), exec);
    // Tables read the leading profile's points (unique per scheme);
    // the JSON/CSV artifacts keep every profile's rows.
    const std::vector<Point_summary> table_points =
        bench::points_for_profile(outcome.points, grid.math_profiles.front());

    std::printf("%10s %12s %12s %12s\n", "SIR(dB)", "BER@Alice", "delivered", "BER p90");
    double measured_at_minus3 = 0.0;
    double measured_at_0 = 0.0;
    // Points come back in grid-axis order, i.e. ascending SIR.
    for (std::size_t i = 0; i < table_points.size(); ++i) {
        const Point_summary& point = table_points[i];
        const double sir_db = sir_points[i];
        const Cdf& ber = point.series.at("ber_at_alice");
        const std::size_t delivered = ber.count();
        const std::size_t attempted = exchanges * runs;
        const double mean_ber = ber.empty() ? 1.0 : ber.mean();
        std::printf("%10.1f %12.4f %9zu/%zu %12.4f\n", sir_db, mean_ber, delivered,
                    attempted, ber.empty() ? 1.0 : ber.quantile(0.90));
        if (sir_db == -3.0)
            measured_at_minus3 = mean_ber;
        if (sir_db == 0.0)
            measured_at_0 = mean_ber;
    }

    std::printf("\nPaper vs measured:\n");
    bench::print_compare("BER at SIR -3 dB (paper: < 0.05)", 0.05, measured_at_minus3);
    bench::print_compare("BER at SIR 0 dB", 0.02, measured_at_0);
    std::printf("  (classical blind separation needs SIR >= +6 dB, §11.7)\n");
    return 0;
}
