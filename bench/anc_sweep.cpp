// anc_sweep — the command-line front-end over the scenario registry
// (the ROADMAP's "CLI front-end" open item): a thin argv ->
// engine::Sweep_grid translation that reuses the engine's emitters, so
// any registered scenario can be swept without writing a driver.
//
//   anc_sweep --scenario alice_bob --snr 16:35:2 --math-profile simd
//             --json out.json
//
// Axis syntax: every numeric axis accepts either a comma list
// ("21,23,25") or a start:stop:step range ("16:35:2", stop inclusive
// when landed on exactly).  --scenario and --scheme repeat.  Profiles
// come as a comma list of exact/fast/simd or the shorthands "both"
// (exact,fast) and "all".
//
// Output: the aggregate table on stdout (unless --quiet), plus --json /
// --csv artifacts in the engine's anc.sweep.v3 schemas and the
// --metrics-json run manifest (anc.metrics.v1, OBSERVABILITY.md).  The
// ANC_ENGINE_JSON / ANC_ENGINE_CSV environment emitters keep working —
// the flags are additive, not a replacement.  Deterministic in
// (--seed, grid): identical results at any --threads value, with or
// without telemetry.
//
// When stderr is a TTY and --quiet is not given, a single-line progress
// display (tasks done/total, rate, ETA) updates in place during the run
// — the reference consumer of Executor_config::on_progress, throttled
// here (the executor calls the hook once per finished task).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "engine/engine.h"

namespace {

using namespace anc;

int usage(const char* argv0, const char* error = nullptr)
{
    // Exit status: 0 for an explicit --help, 2 for usage errors.
    if (error != nullptr)
        std::fprintf(stderr, "error: %s\n\n", error);
    std::fprintf(
        stderr,
        "usage: %s --scenario NAME [options]\n"
        "\n"
        "grid axes (LIST = comma list or start:stop:step range):\n"
        "  --scenario NAME        registry scenario; repeatable\n"
        "  --scheme NAME          restrict to this scheme; repeatable\n"
        "  --snr LIST             SNR sweep in dB (default 25)\n"
        "  --alice-amplitude LIST / --bob-amplitude LIST\n"
        "  --payload-bits LIST    payload size axis (default 2048)\n"
        "  --exchanges LIST       packet pairs per run (default 25)\n"
        "  --detector-threshold LIST  interference variance threshold, dB\n"
        "  --interleave-rows LIST     FEC interleaver depth (0 = off)\n"
        "  --coherence-block LIST     fading coherence block, samples\n"
        "  --mean-link-gain LIST      fading link-gain multiplier\n"
        "  --math-profile LIST    exact|fast|simd, or both|all (default exact)\n"
        "  --repetitions N        independent runs per point (default 1)\n"
        "\n"
        "execution and output:\n"
        "  --threads N            worker threads (0 = hardware concurrency)\n"
        "  --seed N               base seed for the deterministic runs\n"
        "  --json PATH            write the full anc.sweep.v3 JSON document\n"
        "  --csv PATH             write the aggregate CSV\n"
        "  --tasks-csv PATH       write the per-task CSV\n"
        "  --metrics-json PATH    collect telemetry, write the anc.metrics.v1\n"
        "                         run manifest (stage timings, counters, ...)\n"
        "  --quiet                suppress the stdout table and progress line\n"
        "  --list-scenarios       print registered scenarios and exit\n",
        argv0);
    return error == nullptr ? 0 : 2;
}

/// Parse LIST as doubles: "a,b,c" or "start:stop:step" (stop inclusive
/// when the lattice lands on it; step > 0).
std::vector<double> parse_axis(const std::string& text)
{
    std::vector<double> values;
    const std::size_t colon = text.find(':');
    if (colon != std::string::npos) {
        const std::size_t colon2 = text.find(':', colon + 1);
        if (colon2 == std::string::npos)
            throw std::invalid_argument{"range must be start:stop:step: " + text};
        const double start = std::stod(text.substr(0, colon));
        const double stop = std::stod(text.substr(colon + 1, colon2 - colon - 1));
        const double step = std::stod(text.substr(colon2 + 1));
        if (step <= 0.0)
            throw std::invalid_argument{"range step must be positive: " + text};
        // Half-step slack keeps "16:35:2" ending on 34 and "16:34:2" on
        // 34 too, without accumulating error over long ranges.
        for (double v = start; v <= stop + step * 0.5; v += step)
            values.push_back(v);
        // An inverted (or NaN) range yields nothing; fail it here with
        // the offending text instead of letting grid expansion report a
        // bare "empty axis".
        if (values.empty())
            throw std::invalid_argument{"empty range (start > stop?): " + text};
        return values;
    }
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::string item = text.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!item.empty())
            values.push_back(std::stod(item));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (values.empty())
        throw std::invalid_argument{"empty axis value: " + text};
    return values;
}

std::vector<std::size_t> parse_size_axis(const std::string& text)
{
    std::vector<std::size_t> values;
    for (const double v : parse_axis(text)) {
        if (v < 0.0)
            throw std::invalid_argument{"axis value must be non-negative: " + text};
        values.push_back(static_cast<std::size_t>(v + 0.5));
    }
    return values;
}

std::vector<dsp::Math_profile> parse_profiles(const std::string& text)
{
    if (text == "both")
        return {dsp::Math_profile::exact, dsp::Math_profile::fast};
    if (text == "all")
        return {dsp::Math_profile::exact, dsp::Math_profile::fast,
                dsp::Math_profile::simd};
    std::vector<dsp::Math_profile> profiles;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::string item = text.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!item.empty())
            profiles.push_back(dsp::math_profile_from_string(item));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (profiles.empty())
        throw std::invalid_argument{"empty --math-profile value"};
    return profiles;
}

/// The stderr progress line: "\r  123/4096 tasks  41.0/s  ETA 97s".
/// The executor invokes on_progress once per finished task (serialized,
/// never concurrently); the line throttles itself to ~10 redraws per
/// second so terminal I/O never becomes the sweep's bottleneck, and
/// always draws the final task so the line ends at 100%.
class Progress_line {
public:
    void operator()(std::size_t done, std::size_t total)
    {
        const auto now = clock::now();
        if (done != total && drawn_ && now - last_draw_ < std::chrono::milliseconds{100})
            return;
        drawn_ = true;
        last_draw_ = now;
        const double elapsed = std::chrono::duration<double>(now - start_).count();
        const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
        const double eta = rate > 0.0 ? static_cast<double>(total - done) / rate : 0.0;
        std::fprintf(stderr, "\r%6zu/%zu tasks  %6.1f/s  ETA %5.0fs ", done, total,
                     rate, eta);
        if (done == total)
            std::fputc('\n', stderr);
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_ = clock::now();
    clock::time_point last_draw_{};
    bool drawn_ = false;
};

} // namespace

int main(int argc, char** argv)
{
    engine::Sweep_grid grid;
    grid.scenarios.clear();
    engine::Executor_config config;
    std::string json_path;
    std::string csv_path;
    std::string tasks_csv_path;
    std::string metrics_json_path;
    bool quiet = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto value = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw std::invalid_argument{arg + " needs a value"};
                return argv[++i];
            };
            if (arg == "--scenario")
                grid.scenarios.push_back(value());
            else if (arg == "--scheme")
                grid.schemes.push_back(value());
            else if (arg == "--snr")
                grid.snr_db = parse_axis(value());
            else if (arg == "--alice-amplitude")
                grid.alice_amplitudes = parse_axis(value());
            else if (arg == "--bob-amplitude")
                grid.bob_amplitudes = parse_axis(value());
            else if (arg == "--payload-bits")
                grid.payload_bits = parse_size_axis(value());
            else if (arg == "--exchanges")
                grid.exchanges = parse_size_axis(value());
            else if (arg == "--detector-threshold")
                grid.detector_thresholds_db = parse_axis(value());
            else if (arg == "--interleave-rows")
                grid.interleave_rows = parse_size_axis(value());
            else if (arg == "--coherence-block")
                grid.coherence_blocks = parse_size_axis(value());
            else if (arg == "--mean-link-gain")
                grid.mean_link_gains = parse_axis(value());
            else if (arg == "--math-profile")
                grid.math_profiles = parse_profiles(value());
            else if (arg == "--repetitions")
                grid.repetitions = parse_size_axis(value()).front();
            else if (arg == "--threads")
                config.threads = parse_size_axis(value()).front();
            else if (arg == "--seed")
                config.base_seed = std::strtoull(value().c_str(), nullptr, 10);
            else if (arg == "--json")
                json_path = value();
            else if (arg == "--csv")
                csv_path = value();
            else if (arg == "--tasks-csv")
                tasks_csv_path = value();
            else if (arg == "--metrics-json")
                metrics_json_path = value();
            else if (arg == "--quiet")
                quiet = true;
            else if (arg == "--list-scenarios") {
                for (const std::string& name :
                     engine::Scenario_registry::builtin().names())
                    std::printf("%s\n", name.c_str());
                return 0;
            } else if (arg == "--help" || arg == "-h") {
                return usage(argv[0]);
            } else {
                return usage(argv[0], ("unknown argument " + arg).c_str());
            }
        }
        if (grid.scenarios.empty())
            return usage(argv[0], "at least one --scenario is required");

        obs::Sweep_telemetry telemetry;
        if (!metrics_json_path.empty())
            config.telemetry = &telemetry;
        Progress_line progress;
        if (!quiet && isatty(fileno(stderr)))
            config.on_progress = [&progress](std::size_t done, std::size_t total) {
                progress(done, total);
            };

        const engine::Sweep_outcome outcome = engine::run_grid(grid, config);

        if (!quiet)
            engine::print_summary_table(stdout, outcome.points);
        const auto write_file = [](const std::string& path, auto&& writer) {
            std::ofstream out{path};
            if (!out)
                throw std::runtime_error{"cannot write " + path};
            writer(out);
        };
        if (!json_path.empty())
            write_file(json_path, [&](std::ostream& out) {
                engine::write_json(out, outcome.tasks, outcome.points);
            });
        if (!csv_path.empty())
            write_file(csv_path, [&](std::ostream& out) {
                engine::write_summary_csv(out, outcome.points);
            });
        if (!tasks_csv_path.empty())
            write_file(tasks_csv_path, [&](std::ostream& out) {
                engine::write_tasks_csv(out, outcome.tasks);
            });
        if (!metrics_json_path.empty())
            write_file(metrics_json_path, [&](std::ostream& out) {
                engine::write_metrics_json(
                    out, {.driver = "anc_sweep", .base_seed = config.base_seed}, grid,
                    telemetry, outcome.tasks);
                out << "\n";
            });
    } catch (const std::exception& error) {
        return usage(argv[0], error.what());
    }
    return 0;
}
