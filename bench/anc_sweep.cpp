// anc_sweep — the command-line front-end over the scenario registry
// (the ROADMAP's "CLI front-end" open item): a thin argv ->
// engine::Sweep_grid translation that reuses the engine's emitters, so
// any registered scenario can be swept without writing a driver.
//
//   anc_sweep --scenario alice_bob --snr 16:35:2 --math-profile simd
//             --json out.json
//
// Axis syntax: every numeric axis accepts either a comma list
// ("21,23,25") or a start:stop:step range ("16:35:2", stop inclusive
// when landed on exactly).  --scenario and --scheme repeat.  Profiles
// come as a comma list of exact/fast/simd or the shorthands "both"
// (exact,fast) and "all".  The grid-flag table itself lives in
// bench/sweep_cli.h, shared with anc_coordinator so a coordinator can
// forward its grid verbatim to the workers it spawns.
//
// Output: the aggregate table on stdout (unless --quiet), plus --json /
// --csv artifacts in the engine's anc.sweep.v4 schemas and the
// --metrics-json run manifest (anc.metrics.v1, OBSERVABILITY.md).  All
// file artifacts are written atomically (temp file + rename) — a crash
// or SIGKILL never publishes a truncated document.  Deterministic in
// (--seed, grid): identical results at any --threads value, with or
// without telemetry.
//
// Fault tolerance (ENGINE.md "Fault tolerance"):
//   --stream            emit task rows as they finish, O(window) memory
//   --journal FILE      append a crash-safe anc.journal.v1 checkpoint
//   --resume FILE       skip tasks the journal already completed
//   --shard K/N         run the K-th of N deterministic partitions
//   --merge J1,J2,...   fold shard journals into one result set
//   --task-retries N    re-run a throwing task up to N extra times
// Per-task exceptions become `status=error` rows instead of aborting
// the sweep; SIGINT/SIGTERM drain gracefully, flush the journal, and
// still emit the partial artifacts.
//
// Exit codes: 0 success, 2 usage or incompatible inputs, 3 at least one
// task errored (or a merge found gaps), 4 interrupted by signal.  A
// one-line `ok/error/skipped` summary always lands on stderr.
//
// When stderr is a TTY and --quiet is not given, a single-line progress
// display (tasks done/total, rate, ETA) updates in place during the run
// — the reference consumer of Executor_config::on_progress, throttled
// through util/rate_limiter.h (the executor calls the hook once per
// finished task).

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "sweep_cli.h"
#include "engine/engine.h"
#include "engine/journal.h"
#include "engine/jstream.h"
#include "util/atomic_file.h"
#include "util/net.h"

namespace {

using namespace anc;
using namespace anc::bench;

/// Set by the SIGINT/SIGTERM handler; polled by every worker between
/// tasks (Executor_config::cancel), so a signal drains in-flight tasks
/// instead of killing them mid-run.
std::atomic<bool> g_interrupted{false};

extern "C" void handle_signal(int)
{
    g_interrupted.store(true, std::memory_order_relaxed);
}

int usage(const char* argv0, const char* error = nullptr)
{
    // Exit status: 0 for an explicit --help, 2 for usage errors.
    if (error != nullptr)
        std::fprintf(stderr, "error: %s\n\n", error);
    std::fprintf(
        stderr,
        "usage: %s --scenario NAME [options]\n"
        "\n"
        "%s"
        "\n"
        "execution and output:\n"
        "  --threads N            worker threads (0 = hardware concurrency)\n"
        "  --json PATH            write the full anc.sweep.v4 JSON document\n"
        "  --csv PATH             write the aggregate CSV\n"
        "  --tasks-csv PATH       write the per-task CSV\n"
        "  --metrics-json PATH    collect telemetry, write the anc.metrics.v1\n"
        "                         run manifest (stage timings, counters, ...)\n"
        "  --stream               stream task rows to --json/--tasks-csv as\n"
        "                         they finish (O(window) memory)\n"
        "  --quiet                suppress the stdout table and progress line\n"
        "  --list-scenarios       print registered scenarios and exit\n"
        "\n"
        "fault tolerance (ENGINE.md \"Fault tolerance\"):\n"
        "  --journal FILE         checkpoint completed tasks (anc.journal.v1)\n"
        "  --resume FILE          skip tasks FILE already completed; implies\n"
        "                         --journal FILE unless one is given\n"
        "  --shard K/N            run the K-th of N partitions (1-based)\n"
        "  --merge J1,J2,...      merge shard journals (repeatable); needs the\n"
        "                         same grid flags and --seed as the shards\n"
        "  --task-retries N       extra attempts per throwing task (default 0)\n"
        "  --journal-stream H:P   also stream journal lines to a coordinator's\n"
        "                         anc.jstream.v1 listener (needs --journal or\n"
        "                         --resume; the local file stays authoritative)\n"
        "  --stream-flush-ms N    end-of-run budget for draining the stream\n"
        "                         (default 3000; unsynced lines are recovered\n"
        "                         by the coordinator on relaunch)\n"
        "\n"
        "exit codes: 0 ok, 2 usage, 3 task errors or merge gaps, 4 interrupted\n",
        argv0, Grid_cli::usage_text);
    return error == nullptr ? 0 : 2;
}

struct Cli_options {
    engine::Sweep_grid grid;
    engine::Executor_config config;
    std::string json_path, csv_path, tasks_csv_path, metrics_json_path;
    std::string journal_path, resume_path;
    std::vector<std::string> merge_paths;
    std::size_t shard_index = 1, shard_count = 1;
    std::string stream_peer; ///< --journal-stream host:port (empty = off)
    std::chrono::milliseconds stream_flush{3000};
    bool stream = false;
    bool quiet = false;
};

/// Everything the journal header must agree on for this invocation.
engine::Journal_header header_for(const Cli_options& options, std::size_t total_tasks)
{
    engine::Journal_header header;
    header.grid_hash = engine::grid_fingerprint(options.grid);
    header.base_seed = options.config.base_seed;
    header.tasks = total_tasks;
    header.shard_index = options.shard_index;
    header.shard_count = options.shard_count;
    return header;
}

void emit_artifacts(const Cli_options& options,
                    const std::vector<engine::Task_result>& results,
                    const std::vector<engine::Point_summary>& points)
{
    if (!options.json_path.empty())
        write_file_atomic(options.json_path, [&](std::ostream& out) {
            engine::write_json(out, results, points);
        });
    if (!options.csv_path.empty())
        write_file_atomic(options.csv_path, [&](std::ostream& out) {
            engine::write_summary_csv(out, points);
        });
    if (!options.tasks_csv_path.empty())
        write_file_atomic(options.tasks_csv_path, [&](std::ostream& out) {
            engine::write_tasks_csv(out, results);
        });
}

/// The one-line completion contract on stderr (satellite of the exit
/// codes): machine-greppable, always printed, even under --quiet.
void print_summary_line(const engine::Run_tally& tally, bool interrupted)
{
    std::fprintf(stderr, "anc_sweep: %zu ok, %zu error, %zu skipped, resumed %zu%s\n",
                 tally.ok, tally.errors, tally.skipped, tally.resumed,
                 interrupted ? " [interrupted]" : "");
}

int exit_code(const engine::Run_tally& tally, bool interrupted)
{
    if (interrupted)
        return 4;
    return tally.errors > 0 ? 3 : 0;
}

/// --merge: reconstitute n shard journals into the full result set and
/// emit it exactly as a single uninterrupted run would have.
int run_merge(const Cli_options& options)
{
    const engine::Scenario_registry& registry = engine::Scenario_registry::builtin();
    const std::vector<engine::Sweep_task> tasks =
        engine::expand(options.grid, registry);

    std::vector<engine::Journal_entry> entries;
    std::size_t shard_count = 0;
    std::vector<char> shard_seen;
    for (const std::string& path : options.merge_paths) {
        engine::Journal_contents contents = engine::load_journal(path);
        std::string why;
        if (!engine::journal_compatible(contents.header, options.grid,
                                        options.config.base_seed, tasks.size(),
                                        contents.header.shard_index,
                                        contents.header.shard_count, &why))
            throw std::invalid_argument{path + ": " + why};
        if (shard_count == 0) {
            shard_count = contents.header.shard_count;
            shard_seen.assign(shard_count, 0);
        } else if (contents.header.shard_count != shard_count) {
            throw std::invalid_argument{path + ": shard count "
                                        + std::to_string(contents.header.shard_count)
                                        + " != " + std::to_string(shard_count)};
        }
        if (shard_seen[contents.header.shard_index - 1])
            throw std::invalid_argument{path + ": shard "
                                        + std::to_string(contents.header.shard_index)
                                        + "/" + std::to_string(shard_count)
                                        + " appears twice (overlap)"};
        shard_seen[contents.header.shard_index - 1] = 1;
        if (contents.dropped_lines > 0)
            std::fprintf(stderr, "anc_sweep: %s: dropped %zu torn/corrupt lines\n",
                         path.c_str(), contents.dropped_lines);
        for (engine::Journal_entry& entry : contents.entries)
            entries.push_back(std::move(entry));
    }
    for (std::size_t shard = 0; shard < shard_count; ++shard)
        if (!shard_seen[shard])
            throw std::invalid_argument{"no journal for shard "
                                        + std::to_string(shard + 1) + "/"
                                        + std::to_string(shard_count) + " (gap)"};

    std::map<std::size_t, engine::Task_result> preloaded =
        engine::preload_from_entries(std::move(entries), tasks);
    const std::size_t missing = tasks.size() - preloaded.size();
    if (missing > 0)
        std::fprintf(stderr,
                     "anc_sweep: merge is missing %zu of %zu tasks "
                     "(incomplete shard journals)\n",
                     missing, tasks.size());

    // Feed the reconstituted rows through run_sweep with every position
    // preloaded: nothing executes, but ordering, aggregation, and
    // emission follow the exact code path of a live sweep — merge output
    // is byte-identical to a single uninterrupted run by construction.
    engine::Executor_config config = options.config;
    config.preloaded = &preloaded;
    engine::Run_tally tally;
    const std::vector<engine::Task_result> results =
        engine::run_sweep(tasks, registry, config, &tally);
    const std::vector<engine::Point_summary> points = engine::aggregate(results);

    if (!options.quiet)
        engine::print_summary_table(stdout, points);
    emit_artifacts(options, results, points);
    print_summary_line(tally, false);
    if (missing > 0)
        return 3;
    return exit_code(tally, false);
}

int run_sweep_cli(const Cli_options& options_in)
{
    Cli_options options = options_in;
    const engine::Scenario_registry& registry = engine::Scenario_registry::builtin();
    const std::vector<engine::Sweep_task> all_tasks =
        engine::expand(options.grid, registry);
    std::vector<engine::Sweep_task> tasks = all_tasks;
    if (options.shard_count > 1)
        tasks = engine::shard_tasks(all_tasks, options.shard_index, options.shard_count);

    // --resume: reconstitute completed rows; --resume F without
    // --journal also keeps checkpointing into F, so a sweep can crash
    // and resume any number of times against one file.
    //
    // A journal that is missing or unusable (unopenable, bad magic, no
    // surviving header) holds no recoverable rows, so --resume degrades
    // to a fresh start instead of refusing — the coordinator relaunches
    // a shard with --resume whether or not the worker-side file
    // survived (a fresh host, a crash inside the header write).  An
    // INCOMPATIBLE journal stays fatal: that is a wiring bug, and
    // truncating someone else's valid checkpoint would destroy data.
    std::map<std::size_t, engine::Task_result> preloaded;
    if (!options.resume_path.empty()) {
        std::optional<engine::Journal_contents> contents;
        try {
            contents.emplace(engine::load_journal(options.resume_path));
        } catch (const std::exception& error) {
            std::fprintf(stderr, "anc_sweep: %s; starting fresh\n", error.what());
        }
        if (contents) {
            std::string why;
            if (!engine::journal_compatible(contents->header, options.grid,
                                            options.config.base_seed,
                                            all_tasks.size(), options.shard_index,
                                            options.shard_count, &why))
                throw std::invalid_argument{options.resume_path + ": " + why};
            if (contents->dropped_lines > 0)
                std::fprintf(stderr,
                             "anc_sweep: %s: dropped %zu torn/corrupt lines\n",
                             options.resume_path.c_str(), contents->dropped_lines);
            preloaded =
                engine::preload_from_entries(std::move(contents->entries), tasks);
        }
        if (options.journal_path.empty())
            options.journal_path = options.resume_path;
        if (!contents)
            options.resume_path.clear(); // journal_path != resume_path → truncate
    }

    std::unique_ptr<engine::Journal_writer> journal;
    if (!options.journal_path.empty()) {
        const bool fresh = options.journal_path != options.resume_path;
        journal = std::make_unique<engine::Journal_writer>(
            options.journal_path, header_for(options, all_tasks.size()), fresh);
        // Resuming into a NEW journal file: carry the already-completed
        // rows over so the new journal is self-sufficient for the next
        // resume.
        if (fresh && !preloaded.empty()) {
            for (const auto& [position, result] : preloaded)
                journal->append(result);
            journal->flush();
        }
    }

    // --journal-stream: replicate the journal to a coordinator as it
    // grows.  The sender tails the journal FILE (not the in-memory
    // rows), so what travels is byte-for-byte what was checkpointed.
    std::unique_ptr<engine::Jstream_sender> stream_sender;
    if (!options.stream_peer.empty()) {
        engine::Jstream_sender::Config sender_config;
        if (!util::parse_host_port(options.stream_peer, sender_config.peer))
            throw std::invalid_argument{"--journal-stream: bad host:port '"
                                        + options.stream_peer + "'"};
        sender_config.shard_index = options.shard_index;
        sender_config.shard_count = options.shard_count;
        stream_sender = std::make_unique<engine::Jstream_sender>(
            sender_config, options.journal_path);
        stream_sender->pump(); // ship the magic/header (and carried rows) now
    }

    if (journal) {
        options.config.on_complete = [&journal, &stream_sender](
                                         const engine::Task_result& result) {
            journal->append(result);
            if (stream_sender)
                stream_sender->pump();
        };
    }

    obs::Sweep_telemetry telemetry;
    if (!options.metrics_json_path.empty())
        options.config.telemetry = &telemetry;
    Progress_line progress;
    if (!options.quiet && isatty(fileno(stderr)))
        options.config.on_progress = [&progress](std::size_t done, std::size_t total) {
            progress(done, total);
        };

    options.config.isolate_faults = true;
    options.config.cancel = &g_interrupted;
    if (!preloaded.empty())
        options.config.preloaded = &preloaded;

    // --stream: rows leave the process as tasks finish, and the result
    // vector is only materialized when the metrics manifest (which
    // journals every task) asks for it.
    std::optional<Stream_file> json_stream, tasks_csv_stream;
    std::optional<engine::Json_stream_writer> json_writer;
    std::optional<engine::Tasks_csv_stream_writer> csv_writer;
    engine::Aggregator aggregator;
    if (options.stream) {
        options.config.collect_results = !options.metrics_json_path.empty();
        if (!options.json_path.empty()) {
            json_stream.emplace(options.json_path);
            json_writer.emplace(json_stream->stream());
        }
        if (!options.tasks_csv_path.empty()) {
            tasks_csv_stream.emplace(options.tasks_csv_path);
            csv_writer.emplace(tasks_csv_stream->stream());
        }
        options.config.on_result = [&](const engine::Task_result& result) {
            // Aggregate BEFORE emitting: Aggregator::add sorts the
            // row's CDFs in place (lazy-sort side effect), and the batch
            // path aggregates everything before writing — matching the
            // order keeps streamed and batch bytes identical.
            aggregator.add(result);
            if (json_writer)
                json_writer->add(result);
            if (csv_writer)
                csv_writer->add(result);
        };
    }

    engine::Run_tally tally;
    const std::vector<engine::Task_result> results =
        engine::run_sweep(tasks, registry, options.config, &tally);
    const bool interrupted = g_interrupted.load(std::memory_order_relaxed);

    if (journal)
        journal->flush();
    if (stream_sender) {
        // Best-effort drain: a false return means some tail lines were
        // not acknowledged — the local journal still has them, and the
        // coordinator recovers via relaunch-with-resume.
        stream_sender->finish(options.stream_flush);
        const engine::Jstream_sender_stats& js = stream_sender->stats();
        std::fprintf(stderr,
                     "anc_sweep: jstream connects=%zu reconnects=%zu sent=%zu "
                     "replayed=%zu synced=%d\n",
                     js.connects, js.reconnects, js.lines_sent, js.replayed_lines,
                     js.synced ? 1 : 0);
    }

    std::vector<engine::Point_summary> points;
    if (options.stream) {
        points = aggregator.take();
        if (json_writer) {
            json_writer->finish(points);
            json_stream->commit();
        }
        if (csv_writer)
            tasks_csv_stream->commit();
        if (!options.csv_path.empty())
            write_file_atomic(options.csv_path, [&](std::ostream& out) {
                engine::write_summary_csv(out, points);
            });
    } else {
        points = engine::aggregate(results);
        emit_artifacts(options, results, points);
    }

    if (!options.quiet)
        engine::print_summary_table(stdout, points);
    if (!options.metrics_json_path.empty())
        write_file_atomic(options.metrics_json_path, [&](std::ostream& out) {
            engine::write_metrics_json(
                out, {.driver = "anc_sweep", .base_seed = options.config.base_seed},
                options.grid, telemetry, results);
            out << "\n";
        });

    print_summary_line(tally, interrupted);
    return exit_code(tally, interrupted);
}

} // namespace

int main(int argc, char** argv)
{
    Cli_options options;
    options.grid.scenarios.clear();
    Grid_cli grid_cli{options.grid};

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const std::function<std::string()> value = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw std::invalid_argument{arg + " needs a value"};
                return argv[++i];
            };
            if (grid_cli.try_parse(arg, value))
                continue;
            if (arg == "--threads")
                options.config.threads = parse_size_axis(value()).front();
            else if (arg == "--json")
                options.json_path = value();
            else if (arg == "--csv")
                options.csv_path = value();
            else if (arg == "--tasks-csv")
                options.tasks_csv_path = value();
            else if (arg == "--metrics-json")
                options.metrics_json_path = value();
            else if (arg == "--journal")
                options.journal_path = value();
            else if (arg == "--resume")
                options.resume_path = value();
            else if (arg == "--shard") {
                const auto [k, n] = parse_shard(value());
                options.shard_index = k;
                options.shard_count = n;
            } else if (arg == "--merge") {
                for (std::string& path : parse_path_list(value()))
                    options.merge_paths.push_back(std::move(path));
            } else if (arg == "--task-retries")
                options.config.max_attempts = 1 + parse_size_axis(value()).front();
            else if (arg == "--journal-stream")
                options.stream_peer = value();
            else if (arg == "--stream-flush-ms")
                options.stream_flush =
                    std::chrono::milliseconds{parse_size_axis(value()).front()};
            else if (arg == "--stream")
                options.stream = true;
            else if (arg == "--quiet")
                options.quiet = true;
            else if (arg == "--list-scenarios") {
                for (const std::string& name :
                     engine::Scenario_registry::builtin().names())
                    std::printf("%s\n", name.c_str());
                return 0;
            } else if (arg == "--help" || arg == "-h") {
                return usage(argv[0]);
            } else {
                return usage(argv[0], ("unknown argument " + arg).c_str());
            }
        }
        options.config.base_seed = grid_cli.base_seed;
        if (options.grid.scenarios.empty())
            return usage(argv[0], "at least one --scenario is required");
        if (!options.merge_paths.empty()
            && (!options.journal_path.empty() || !options.resume_path.empty()
                || options.shard_count > 1 || options.stream
                || !options.stream_peer.empty()))
            return usage(argv[0],
                         "--merge excludes --journal/--resume/--shard/--stream");
        if (!options.stream_peer.empty()) {
            if (options.journal_path.empty() && options.resume_path.empty())
                return usage(argv[0],
                             "--journal-stream needs --journal or --resume "
                             "(the stream replicates the journal file)");
            anc::util::Host_port probe;
            if (!anc::util::parse_host_port(options.stream_peer, probe))
                return usage(argv[0], ("--journal-stream: bad host:port '"
                                       + options.stream_peer + "'")
                                          .c_str());
        }

        struct sigaction action{};
        action.sa_handler = handle_signal;
        sigaction(SIGINT, &action, nullptr);
        sigaction(SIGTERM, &action, nullptr);

        if (!options.merge_paths.empty())
            return run_merge(options);
        return run_sweep_cli(options);
    } catch (const std::exception& error) {
        return usage(argv[0], error.what());
    }
}
