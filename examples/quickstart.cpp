// Quickstart: one Alice-Bob exchange with analog network coding.
//
// Two nodes that cannot hear each other exchange packets through a relay
// in two time slots instead of four: they transmit *simultaneously*, the
// relay amplifies and re-broadcasts the collision, and each side cancels
// its own signal to decode the other's packet.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "channel/medium.h"
#include "core/anc_receiver.h"
#include "core/relay.h"
#include "core/trigger.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/topology.h"
#include "util/bits.h"

int main()
{
    using namespace anc;

    // --- A wireless world: Alice <-> Router <-> Bob at 25 dB SNR ----
    const double noise_power = chan::noise_power_for_snr_db(25.0);
    Pcg32 rng{7};
    chan::Medium medium{noise_power, rng.fork(1)};
    Pcg32 link_rng = rng.fork(2);
    const net::Alice_bob_nodes nodes;
    install_alice_bob(medium, nodes, net::Alice_bob_gains{}, link_rng);

    net::Net_node alice{nodes.alice};
    net::Net_node bob{nodes.bob};

    // --- Each side has a packet for the other -----------------------
    Pcg32 traffic = rng.fork(3);
    net::Flow alice_to_bob{1, 3, 1024, traffic.fork(1)};
    net::Flow bob_to_alice{3, 1, 1024, traffic.fork(2)};
    const net::Packet pa = alice_to_bob.next();
    const net::Packet pb = bob_to_alice.next();

    // --- Slot 1: both transmit at once (trigger jitter keeps the ----
    //     overlap incomplete so the pilots stay interference-free)
    const auto [delay_a, delay_b] = draw_distinct_delays(Trigger_config{}, rng);
    const dsp::Signal signal_a = alice.transmit(pa, rng);
    const dsp::Signal signal_b = bob.transmit(pb, rng);
    const chan::Transmission round1[] = {{alice.id(), signal_a, delay_a},
                                         {bob.id(), signal_b, delay_b}};
    const dsp::Signal at_router = medium.receive(nodes.router, round1, 64);
    std::printf("slot 1: Alice and Bob collide at the router "
                "(offsets %zu and %zu symbols)\n", delay_a, delay_b);

    // --- Slot 2: the router amplifies and forwards the raw signal ---
    const auto broadcast = amplify_and_forward(at_router, noise_power, 1.0);
    if (!broadcast) {
        std::printf("relay detected nothing!\n");
        return 1;
    }
    const chan::Transmission round2[] = {{nodes.router, *broadcast, 0}};
    std::printf("slot 2: router re-broadcasts the interfered signal "
                "(%zu samples)\n", broadcast->size());

    // --- Each side cancels its own half and decodes the other's -----
    const Anc_receiver receiver{Anc_receiver_config{}, noise_power};
    const auto at_alice = medium.receive(alice.id(), round2, 64);
    const auto at_bob = medium.receive(bob.id(), round2, 64);

    const Receive_outcome alice_out = receiver.receive(at_alice, alice.buffer());
    const Receive_outcome bob_out = receiver.receive(at_bob, bob.buffer());

    if (alice_out.status == Receive_status::decoded_interference) {
        std::printf("Alice decoded Bob's packet seq=%u, BER %.4f (%s)\n",
                    alice_out.frame->header.seq,
                    bit_error_rate(alice_out.frame->payload, pb.payload),
                    alice_out.diag.backward ? "backward" : "forward");
    }
    if (bob_out.status == Receive_status::decoded_interference) {
        std::printf("Bob decoded Alice's packet seq=%u, BER %.4f (%s)\n",
                    bob_out.frame->header.seq,
                    bit_error_rate(bob_out.frame->payload, pa.payload),
                    bob_out.diag.backward ? "backward" : "forward");
    }
    std::printf("two packets exchanged in 2 slots instead of 4.\n");
    return 0;
}
