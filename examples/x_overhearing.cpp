// "X" topology (Fig. 11): two flows crossing a relay, where destinations
// know the interfering packet from *overhearing* rather than from having
// sent it.  Shows the overhear-under-interference failure mode (§11.5).
//
// Usage: x_overhearing [exchanges] [snr_db]

#include <cstdio>
#include <cstdlib>

#include "sim/x_topology.h"

int main(int argc, char** argv)
{
    using namespace anc::sim;

    X_config config;
    config.exchanges = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40;
    config.snr_db = argc > 2 ? std::strtod(argv[2], nullptr) : 22.0;
    config.seed = 314;

    std::printf("X topology: flows N1->N4 and N3->N2 crossing at N5\n");
    std::printf("(%zu packet pairs, payload %zu bits, SNR %.0f dB)\n\n", config.exchanges,
                config.payload_bits, config.snr_db);

    const X_result traditional = run_x_traditional(config);
    const X_result cope = run_x_cope(config);
    const X_result anc = run_x_anc(config);

    std::printf("%-14s %12s %12s %14s %18s\n", "scheme", "delivered", "mean BER",
                "throughput", "overhear failures");
    const auto row = [](const char* name, const X_result& r) {
        std::printf("%-14s %6zu/%-5zu %12.4f %14.5f %12zu/%zu\n", name,
                    r.metrics.packets_delivered, r.metrics.packets_attempted,
                    r.metrics.mean_ber(), r.metrics.throughput(), r.overhear_failures,
                    r.overhear_attempts);
    };
    row("traditional", traditional);
    row("COPE", cope);
    row("ANC", anc);

    std::printf("\nANC gain over traditional: %.3f  (paper: ~1.65)\n",
                gain(anc.metrics, traditional.metrics));
    std::printf("ANC gain over COPE:        %.3f  (paper: ~1.28)\n",
                gain(anc.metrics, cope.metrics));
    std::printf("\nUnder ANC the snooped transmission is itself interfered, so\n"
                "overhearing occasionally fails — the reason the X gains sit\n"
                "slightly below Alice-Bob's.\n");
    return 0;
}
