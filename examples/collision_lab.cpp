// Collision lab: a guided walk through the decoding machinery of §6 on a
// single synthetic collision — Lemma 6.1's two-solution geometry, the
// mu/sigma amplitude equations, phase-difference matching, and the final
// bit decisions.  Useful for understanding the algorithm and as a
// debugging aid when porting to new modulations.

#include <cstdio>

#include "channel/awgn.h"
#include "channel/link.h"
#include "core/amplitude_estimator.h"
#include "core/interference_decoder.h"
#include "core/phase_solver.h"
#include "dsp/msk.h"
#include "dsp/ops.h"
#include "util/bits.h"
#include "util/phase.h"
#include "util/rng.h"

int main()
{
    using namespace anc;

    std::printf("=== 1. Two MSK signals collide ===\n");
    Pcg32 rng{2007};
    const std::size_t n_bits = 1600;
    const Bits known_bits = random_bits(n_bits, rng);
    const Bits unknown_bits = random_bits(n_bits, rng);
    const double amp_known = 1.0;
    const double amp_unknown = 0.8;

    const dsp::Msk_modulator mod_known{amp_known, 0.3};
    const dsp::Msk_modulator mod_unknown{amp_unknown, 1.7};
    chan::Link_params drift;
    drift.phase_drift = 0.004; // relative carrier-frequency offset
    dsp::Signal mix = mod_known.modulate(known_bits);
    dsp::accumulate(mix, chan::Link_channel{drift}.apply(mod_unknown.modulate(unknown_bits)), 0);
    chan::Awgn noise{chan::noise_power_for_snr_db(25.0), rng.fork(1)};
    noise.add_in_place(mix);
    std::printf("amplitudes: known A=%.2f, unknown B=%.2f; %zu samples at 25 dB SNR\n\n",
                amp_known, amp_unknown, mix.size());

    std::printf("=== 2. Lemma 6.1: each sample admits exactly two phase pairs ===\n");
    const dsp::Sample y = mix[100];
    const Phase_solutions solutions = solve_phases(y, amp_known, amp_unknown);
    std::printf("y[100] = %.3f%+.3fi  (|y| = %.3f, D = cos(theta-phi) = %.3f)\n", y.real(),
                y.imag(), std::abs(y), solutions.d);
    for (int i = 0; i < 2; ++i) {
        const auto& p = solutions.pair[i];
        const dsp::Sample rebuilt =
            std::polar(amp_known, p.theta) + std::polar(amp_unknown, p.phi);
        std::printf("  solution %d: theta=%+.3f phi=%+.3f  -> rebuilds y as %.3f%+.3fi\n",
                    i + 1, p.theta, p.phi, rebuilt.real(), rebuilt.imag());
    }

    std::printf("\n=== 3. Eq. 5-6: amplitudes from energy statistics alone ===\n");
    const auto mu_sigma = estimate_amplitudes(mix, chan::noise_power_for_snr_db(25.0));
    if (mu_sigma) {
        std::printf("mu    = %.4f (true A^2+B^2 = %.4f)\n", mu_sigma->mu,
                    amp_known * amp_known + amp_unknown * amp_unknown);
        std::printf("sigma = %.4f (true A^2+B^2+4AB/pi = %.4f)\n", mu_sigma->sigma,
                    amp_known * amp_known + amp_unknown * amp_unknown
                        + 4.0 * amp_known * amp_unknown / 3.14159265);
        std::printf("estimated A=%.3f B=%.3f (true 1.00 / 0.80)\n", mu_sigma->a,
                    mu_sigma->b);
    }
    const auto by_variance = estimate_amplitudes_by_variance(
        mix, chan::noise_power_for_snr_db(25.0));
    if (by_variance) {
        std::printf("variance estimator:  A=%.3f B=%.3f (distribution-free alternative)\n",
                    by_variance->a, by_variance->b);
    }

    std::printf("\n=== 4. Matching: pick the pair whose delta-theta fits the known bits ===\n");
    const auto known_diffs = dsp::phase_differences_for_bits(known_bits);
    const Interference_decoder decoder;
    const auto result = decoder.decode(mix, known_diffs, amp_known, amp_unknown);
    double mean_error = 0.0;
    for (const double e : result.match_errors)
        mean_error += e;
    mean_error /= static_cast<double>(result.match_errors.size());
    std::printf("mean |delta-theta - expected| over %zu transitions: %.3f rad\n",
                result.match_errors.size(), mean_error);

    std::printf("\n=== 5. Read the unknown bits off the matching delta-phi ===\n");
    std::size_t errors = 0;
    for (std::size_t i = 0; i < n_bits; ++i)
        errors += (result.bits[i] != unknown_bits[i]);
    std::printf("decoded %zu unknown bits with %zu errors (BER %.4f)\n", n_bits, errors,
                static_cast<double>(errors) / static_cast<double>(n_bits));
    std::printf("first 32 decoded: %s\n",
                to_string(std::span<const std::uint8_t>{result.bits}.first(32)).c_str());
    std::printf("first 32 truth:   %s\n",
                to_string(std::span<const std::uint8_t>{unknown_bits}.first(32)).c_str());
    return 0;
}
