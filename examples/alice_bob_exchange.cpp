// Alice-Bob scheme shoot-out: run the same workload under traditional
// routing, COPE-style digital network coding, and analog network coding,
// and print throughput, gains, BER, and airtime — the experiment behind
// the paper's headline numbers (§11.4).
//
// Usage: alice_bob_exchange [exchanges] [snr_db]

#include <cstdio>
#include <cstdlib>

#include "sim/alice_bob.h"

int main(int argc, char** argv)
{
    using namespace anc::sim;

    Alice_bob_config config;
    config.exchanges = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40;
    config.snr_db = argc > 2 ? std::strtod(argv[2], nullptr) : 22.0;
    config.seed = 2024;

    std::printf("Alice-Bob topology: %zu packet pairs, payload %zu bits, SNR %.0f dB\n\n",
                config.exchanges, config.payload_bits, config.snr_db);

    const Alice_bob_result traditional = run_alice_bob_traditional(config);
    const Alice_bob_result cope = run_alice_bob_cope(config);
    const Alice_bob_result anc = run_alice_bob_anc(config);

    std::printf("%-14s %12s %12s %12s %12s\n", "scheme", "delivered", "airtime",
                "mean BER", "throughput");
    const auto row = [](const char* name, const Run_metrics& m) {
        std::printf("%-14s %6zu/%-5zu %12.0f %12.4f %12.5f\n", name, m.packets_delivered,
                    m.packets_attempted, m.airtime_symbols, m.mean_ber(), m.throughput());
    };
    row("traditional", traditional.metrics);
    row("COPE", cope.metrics);
    row("ANC", anc.metrics);

    std::printf("\nANC gain over traditional: %.3f   (paper: ~1.70)\n",
                gain(anc.metrics, traditional.metrics));
    std::printf("ANC gain over COPE:        %.3f   (paper: ~1.30)\n",
                gain(anc.metrics, cope.metrics));
    std::printf("COPE gain over traditional: %.3f  (theory: 4/3)\n",
                gain(cope.metrics, traditional.metrics));
    std::printf("mean packet overlap: %.2f          (paper: ~0.80)\n",
                anc.metrics.mean_overlap());
    return 0;
}
