// Alice-Bob scheme shoot-out: run the same workload under traditional
// routing, COPE-style digital network coding, and analog network coding,
// and print throughput, gains, BER, and airtime — the experiment behind
// the paper's headline numbers (§11.4).
//
// Runs on the sweep engine: the three schemes are one grid, executed in
// parallel (set ANC_ENGINE_THREADS=1 to force serial; results are
// identical either way).
//
// Usage: alice_bob_exchange [exchanges] [snr_db]

#include <cstdio>
#include <cstdlib>

#include "engine/engine.h"

int main(int argc, char** argv)
{
    using namespace anc;
    using namespace anc::engine;

    Sweep_grid grid;
    grid.scenarios = {"alice_bob"};
    grid.schemes = {"traditional", "cope", "anc"};
    grid.exchanges = {argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40};
    grid.snr_db = {argc > 2 ? std::strtod(argv[2], nullptr) : 22.0};

    Executor_config exec;
    exec.base_seed = 2024;
    const Sweep_outcome outcome = run_grid(grid, exec);

    std::printf("Alice-Bob topology: %zu packet pairs, payload %zu bits, SNR %.0f dB\n\n",
                grid.exchanges[0], grid.payload_bits[0], grid.snr_db[0]);

    std::printf("%-14s %12s %12s %12s %12s\n", "scheme", "delivered", "airtime",
                "mean BER", "throughput");
    const auto row = [&](const char* name, const char* scheme) {
        const sim::Run_metrics& m =
            summary_for(outcome.points, "alice_bob", scheme).totals;
        std::printf("%-14s %6zu/%-5zu %12.0f %12.4f %12.5f\n", name,
                    m.packets_delivered, m.packets_attempted, m.airtime_symbols,
                    m.mean_ber(), m.throughput());
    };
    row("traditional", "traditional");
    row("COPE", "cope");
    row("ANC", "anc");

    const sim::Run_metrics& anc_m = summary_for(outcome.points, "alice_bob", "anc").totals;
    const sim::Run_metrics& trad_m =
        summary_for(outcome.points, "alice_bob", "traditional").totals;
    const sim::Run_metrics& cope_m = summary_for(outcome.points, "alice_bob", "cope").totals;

    std::printf("\nANC gain over traditional: %.3f   (paper: ~1.70)\n",
                sim::gain(anc_m, trad_m));
    std::printf("ANC gain over COPE:        %.3f   (paper: ~1.30)\n",
                sim::gain(anc_m, cope_m));
    std::printf("COPE gain over traditional: %.3f  (theory: 4/3)\n",
                sim::gain(cope_m, trad_m));
    std::printf("mean packet overlap: %.2f          (paper: ~0.80)\n",
                anc_m.mean_overlap());
    return 0;
}
