// Capacity explorer: evaluate the Theorem 8.1 bounds at chosen SNRs and
// inspect the Appendix C link-budget pieces for asymmetric channels.
//
// Usage: capacity_explorer [snr_db ...]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "capacity/capacity.h"
#include "util/db.h"

int main(int argc, char** argv)
{
    using namespace anc;

    std::vector<double> snrs;
    for (int i = 1; i < argc; ++i)
        snrs.push_back(std::strtod(argv[i], nullptr));
    if (snrs.empty())
        snrs = {0.0, 5.0, 8.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0, 55.0};

    std::printf("Half-duplex 2-way relay capacity (Theorem 8.1, alpha = 1/8)\n\n");
    std::printf("%8s %14s %12s %8s %s\n", "SNR(dB)", "traditional", "ANC", "gain", "regime");
    for (const double snr_db : snrs) {
        const double snr = from_db(snr_db);
        const double traditional = cap::traditional_upper_bound(snr);
        const double anc = cap::anc_lower_bound(snr);
        std::printf("%8.1f %14.4f %12.4f %8.3f %s\n", snr_db, traditional, anc,
                    traditional > 0 ? anc / traditional : 0.0,
                    anc > traditional ? "ANC wins" : "routing wins (noise amplification)");
    }
    std::printf("\ncrossover: %.2f dB; WLANs operate at 25-40 dB where the gain is ~2x\n",
                cap::crossover_snr_db());

    std::printf("\nAppendix C with asymmetric links (P = 316 ~ 25 dB):\n");
    const double p = from_db(25.0);
    for (const double h_br : {1.0, 0.7, 0.4}) {
        std::printf("  h_ar=1.0 h_br=%.1f: relay amp=%.3f  SNR@Alice=%.1f dB  sum rate=%.3f\n",
                    h_br, cap::relay_amplification(p, 1.0, h_br),
                    to_db(cap::anc_receiver_snr(p, 1.0, h_br, 1.0)),
                    cap::anc_sum_rate(p, 1.0, h_br, 1.0, h_br));
    }
    return 0;
}
