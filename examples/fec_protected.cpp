// FEC-protected exchange: run application data through the
// Hamming(7,4)+interleaver codec, across an ANC collision, and back —
// demonstrating that the "extra redundancy" the paper budgets for
// (§11.2) really turns a few-percent-BER channel into a clean one.

#include <cstdio>

#include "channel/medium.h"
#include "core/anc_receiver.h"
#include "core/relay.h"
#include "core/trigger.h"
#include "fec/codec.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/topology.h"
#include "util/bits.h"

int main()
{
    using namespace anc;

    // A noisier world than quickstart's: 20 dB, where ANC decodes carry
    // visible bit errors.
    const double noise_power = chan::noise_power_for_snr_db(20.0);
    Pcg32 rng{11};
    chan::Medium medium{noise_power, rng.fork(1)};
    Pcg32 link_rng = rng.fork(2);
    const net::Alice_bob_nodes nodes;
    install_alice_bob(medium, nodes, net::Alice_bob_gains{}, link_rng);
    net::Net_node alice{nodes.alice};
    net::Net_node bob{nodes.bob};
    const Anc_receiver receiver{Anc_receiver_config{}, noise_power};

    const fec::Fec_codec codec{64};
    const std::size_t data_bits = 1170;

    std::size_t raw_errors = 0;
    std::size_t corrected_errors = 0;
    std::size_t decoded_packets = 0;
    const std::size_t rounds = 12;

    Pcg32 traffic = rng.fork(3);
    for (std::size_t i = 0; i < rounds; ++i) {
        // Bob's application data, FEC-encoded into the packet payload.
        const Bits data = random_bits(data_bits, traffic);
        net::Packet pb;
        pb.src = 3;
        pb.dst = 1;
        pb.seq = static_cast<std::uint16_t>(i + 1);
        pb.payload = codec.encode(data);

        net::Packet pa;
        pa.src = 1;
        pa.dst = 3;
        pa.seq = static_cast<std::uint16_t>(i + 1);
        pa.payload = random_bits(pb.payload.size(), traffic);

        const auto [da, db] = draw_distinct_delays(Trigger_config{}, rng);
        const dsp::Signal signal_a = alice.transmit(pa, rng);
        const dsp::Signal signal_b = bob.transmit(pb, rng);
        const chan::Transmission round1[] = {{alice.id(), signal_a, da},
                                             {bob.id(), signal_b, db}};
        const auto at_router = medium.receive(nodes.router, round1, 64);
        const auto fwd = amplify_and_forward(at_router, noise_power, 1.0);
        if (!fwd)
            continue;
        const chan::Transmission round2[] = {{nodes.router, *fwd, 0}};
        const auto at_alice = medium.receive(alice.id(), round2, 64);
        const auto outcome = receiver.receive(at_alice, alice.buffer());
        if (outcome.status != Receive_status::decoded_interference)
            continue;

        ++decoded_packets;
        raw_errors += hamming_distance(outcome.frame->payload, pb.payload);
        const Bits recovered = codec.decode(outcome.frame->payload, data_bits);
        corrected_errors += hamming_distance(recovered, data);
    }

    std::printf("ANC at 20 dB SNR, %zu collisions, %zu decoded\n", rounds, decoded_packets);
    std::printf("on-air payload bit errors (pre-FEC):  %zu\n", raw_errors);
    std::printf("application data bit errors (post-FEC): %zu\n", corrected_errors);
    std::printf("rate-4/7 Hamming + 64x7 interleaver absorbed the interference-decoding\n"
                "residue — the redundancy the paper's throughput accounting charges.\n");
    return 0;
}
