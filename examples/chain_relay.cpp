// Chain topology (Fig. 2): a single flow over N1 -> N2 -> N3 -> N4.
//
// ANC lets N1 and N3 transmit in the same slot: the collision at N2 is
// harmless because N2 itself forwarded N3's packet a slot earlier and can
// cancel it — the "hidden terminal" becomes useful.  3 slots per packet
// drop to 2 (§2(b), §11.6).
//
// Runs on the sweep engine: both schemes are one grid, executed in
// parallel.
//
// Usage: chain_relay [packets] [snr_db]

#include <cstdio>
#include <cstdlib>

#include "engine/engine.h"
#include "phy/frame.h"

int main(int argc, char** argv)
{
    using namespace anc;
    using namespace anc::engine;

    Sweep_grid grid;
    grid.scenarios = {"chain"};
    grid.exchanges = {argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40};
    grid.snr_db = {argc > 2 ? std::strtod(argv[2], nullptr) : 22.0};

    Executor_config exec;
    exec.base_seed = 99;
    const Sweep_outcome outcome = run_grid(grid, exec);

    std::printf("Chain topology: %zu packets end-to-end, payload %zu bits, SNR %.0f dB\n\n",
                grid.exchanges[0], grid.payload_bits[0], grid.snr_db[0]);

    const sim::Run_metrics& trad_m =
        summary_for(outcome.points, "chain", "traditional").totals;
    const Point_summary& anc_point = summary_for(outcome.points, "chain", "anc");
    const sim::Run_metrics& anc_m = anc_point.totals;

    const double frame =
        static_cast<double>(phy::frame_length(grid.payload_bits[0]) + 1);
    std::printf("%-14s %12s %16s %14s\n", "scheme", "delivered", "slots/packet",
                "throughput");
    const auto row = [&](const char* name, const sim::Run_metrics& m) {
        std::printf("%-14s %6zu/%-5zu %16.2f %14.5f\n", name, m.packets_delivered,
                    m.packets_attempted,
                    m.airtime_symbols / frame / static_cast<double>(m.packets_attempted),
                    m.throughput());
    };
    row("traditional", trad_m);
    row("ANC", anc_m);

    std::printf("\nANC gain over traditional: %.3f  (paper: ~1.36, theory: 1.5)\n",
                sim::gain(anc_m, trad_m));
    const Cdf& ber_at_n2 = anc_point.series.at("ber_at_n2");
    if (!ber_at_n2.empty()) {
        std::printf("BER of interference decodes at N2: mean %.4f "
                    "(lower than Alice-Bob: no re-amplified noise)\n",
                    ber_at_n2.mean());
    }
    std::printf("(COPE does not apply: the flow is unidirectional.)\n");
    return 0;
}
