// Chain topology (Fig. 2): a single flow over N1 -> N2 -> N3 -> N4.
//
// ANC lets N1 and N3 transmit in the same slot: the collision at N2 is
// harmless because N2 itself forwarded N3's packet a slot earlier and can
// cancel it — the "hidden terminal" becomes useful.  3 slots per packet
// drop to 2 (§2(b), §11.6).
//
// Usage: chain_relay [packets] [snr_db]

#include <cstdio>
#include <cstdlib>

#include "phy/frame.h"
#include "sim/chain.h"

int main(int argc, char** argv)
{
    using namespace anc::sim;

    Chain_config config;
    config.packets = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40;
    config.snr_db = argc > 2 ? std::strtod(argv[2], nullptr) : 22.0;
    config.seed = 99;

    std::printf("Chain topology: %zu packets end-to-end, payload %zu bits, SNR %.0f dB\n\n",
                config.packets, config.payload_bits, config.snr_db);

    const Chain_result traditional = run_chain_traditional(config);
    const Chain_result anc = run_chain_anc(config);

    const double frame = static_cast<double>(anc::phy::frame_length(config.payload_bits) + 1);
    std::printf("%-14s %12s %16s %14s\n", "scheme", "delivered", "slots/packet",
                "throughput");
    const auto row = [&](const char* name, const Run_metrics& m) {
        std::printf("%-14s %6zu/%-5zu %16.2f %14.5f\n", name, m.packets_delivered,
                    m.packets_attempted,
                    m.airtime_symbols / frame / static_cast<double>(m.packets_attempted),
                    m.throughput());
    };
    row("traditional", traditional.metrics);
    row("ANC", anc.metrics);

    std::printf("\nANC gain over traditional: %.3f  (paper: ~1.36, theory: 1.5)\n",
                gain(anc.metrics, traditional.metrics));
    if (!anc.ber_at_n2.empty()) {
        std::printf("BER of interference decodes at N2: mean %.4f "
                    "(lower than Alice-Bob: no re-amplified noise)\n",
                    anc.ber_at_n2.mean());
    }
    std::printf("(COPE does not apply: the flow is unidirectional.)\n");
    return 0;
}
