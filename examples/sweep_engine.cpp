// Sweep engine tour: declare a grid over topology x scheme x SNR, run
// it across all cores, and emit the aggregate table plus CSV/JSON.
//
// This is the generalized form of every figure bench: a declarative
// parameter grid instead of hand-rolled loops.  Larger grids (the
// Rahimian-style fading sweeps, multi-amplitude SIR maps, ...) are the
// same few lines.
//
// Usage: sweep_engine [repetitions]
//   ANC_ENGINE_THREADS=4  worker threads (default: hardware concurrency)
//   ANC_ENGINE_CSV=out.csv / ANC_ENGINE_JSON=out.json  file emitters

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "engine/engine.h"

int main(int argc, char** argv)
{
    using namespace anc::engine;

    Sweep_grid grid;
    grid.scenarios = {"alice_bob", "x_topology", "chain"};
    grid.snr_db = {20.0, 25.0};
    grid.exchanges = {10};
    grid.repetitions = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;

    Executor_config exec;
    exec.base_seed = 42;
    exec.on_progress = [](std::size_t done, std::size_t total) {
        if (done == total || done % 10 == 0)
            std::fprintf(stderr, "\r[%zu/%zu tasks]", done, total);
        if (done == total)
            std::fprintf(stderr, "\n");
    };

    const Sweep_outcome outcome = run_grid(grid, exec);

    std::printf("Sweep: %zu tasks over %zu grid points on %zu threads\n\n",
                outcome.tasks.size(), outcome.points.size(),
                resolve_thread_count(exec));
    print_summary_table(stdout, outcome.points);

    // The same data, machine-readable (also available via the
    // ANC_ENGINE_CSV / ANC_ENGINE_JSON environment emitters).
    std::ostringstream csv;
    write_summary_csv(csv, outcome.points);
    std::printf("\n--- summary.csv ---\n%s", csv.str().c_str());
    return 0;
}
